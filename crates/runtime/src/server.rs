//! The two serving front-ends over the [`WorkerPool`]:
//!
//! * [`InferenceServer`] — closed batches: splits an incoming `[N, …]`
//!   batch into chunk requests, fans them out over the submission queue,
//!   and reassembles ordered logits, merged [`RunStats`] and per-request
//!   latency metrics.
//! * [`StreamingServer`] — open traffic: requests arrive one at a time via
//!   [`StreamingServer::submit`], an adaptive [`DeadlineBatcher`] groups
//!   them (flush at `max_batch` or when the oldest request's deadline
//!   expires, whichever comes first), and results come back through
//!   per-request [`Ticket`]s.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use snn_sim::RunStats;
use snn_telemetry::{Labels, TelemetryHub};
use snn_tensor::Tensor;
use snn_trace::{push_context, TraceCollector, TraceTarget};
use ttfs_core::{ConvertError, SnnModel};

use crate::batcher::{
    BatcherMsg, BrownoutConfig, DeadlineBatcher, FlushReason, PendingRequest, StreamingConfig,
    SubmitError, SubmitOptions, Ticket,
};
use crate::energy::EnergyPricer;
use crate::faults::{FaultInjector, FaultPoint};
use crate::metrics::{
    LatencyRecorder, LogSink, StreamingMetrics, StreamingRecorder, TelemetrySink, ThroughputMetrics,
};
use crate::workers::WorkerPool;
use crate::{InferenceBackend, StreamedResponse};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Images per request chunk (0 = clamp to 1).
    pub chunk_size: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            chunk_size: 8,
        }
    }
}

impl ServerConfig {
    fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        }
    }
}

/// Result of one batched run through the server.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Decoded logits `[N, classes]`, in submission order.
    pub logits: Tensor,
    /// Event statistics merged over all chunks.
    pub stats: RunStats,
    /// Latency/throughput metrics over the chunk requests.
    pub metrics: ThroughputMetrics,
}

/// Multi-threaded batched inference front-end over any
/// [`InferenceBackend`].
///
/// The backend sits behind one `Arc` shared by every worker, and a
/// [`CsrEngine`](crate::CsrEngine) itself holds its model and compiled
/// synapse tables behind `Arc`s — however many servers, workers and engine
/// clones are running, there is exactly one read-only copy of the weights
/// in memory.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use rand::SeedableRng;
/// use snn_nn::{DenseLayer, Flatten, Layer, Sequential};
/// use snn_runtime::{CsrEngine, InferenceServer, ServerConfig};
/// use snn_tensor::Tensor;
/// use ttfs_core::{convert, Base2Kernel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = Sequential::new(vec![
///     Layer::Flatten(Flatten::new()),
///     Layer::Dense(DenseLayer::new(9, 2, &mut rng)),
/// ]);
/// // One shared copy of the converted model for the engine + all workers.
/// let model = Arc::new(convert(&net, Base2Kernel::paper_default(), 16)?);
/// let engine = Arc::new(CsrEngine::compile_shared(Arc::clone(&model), &[1, 3, 3])?);
/// let server = InferenceServer::new(engine, ServerConfig { threads: 2, chunk_size: 2 });
/// let report = server.run(&Tensor::full(&[5, 1, 3, 3], 0.5))?;
/// assert_eq!(report.logits.dims(), &[5, 2]);
/// assert_eq!(report.metrics.requests, 3); // ceil(5 / chunk_size)
/// # Ok(())
/// # }
/// ```
pub struct InferenceServer {
    backend: Arc<dyn InferenceBackend>,
    pool: WorkerPool,
    chunk_size: usize,
}

impl InferenceServer {
    /// Builds a server around `backend`.
    pub fn new(backend: Arc<dyn InferenceBackend>, config: ServerConfig) -> Self {
        let threads = config.resolved_threads();
        Self {
            backend,
            pool: WorkerPool::new(threads),
            chunk_size: config.chunk_size.max(1),
        }
    }

    /// The wrapped backend's identifier.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// The converted model the wrapped backend executes.
    pub fn model(&self) -> &SnnModel {
        self.backend.model()
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Runs a `[N, C, H, W]` batch across the worker pool.
    ///
    /// The batch is split into `chunk_size` requests; each request is one
    /// submission-queue job and one latency sample. Logits come back in
    /// submission order regardless of completion order.
    ///
    /// # Errors
    ///
    /// Returns the first chunk error if any request fails (remaining
    /// results are drained and discarded).
    pub fn run(&self, images: &Tensor) -> Result<BatchReport, ConvertError> {
        let dims = images.dims();
        if dims.len() < 2 {
            return Err(ConvertError::Structure(format!(
                "expected batched input, got {:?}",
                dims
            )));
        }
        let n = dims[0];
        let sample_dims = dims[1..].to_vec();
        let sample_len: usize = sample_dims.iter().product();
        let start_all = Instant::now();

        // Split into chunk requests up front (cheap copies of input slices;
        // inference dominates by orders of magnitude).
        let mut chunks: Vec<Tensor> = Vec::new();
        let mut begin = 0usize;
        while begin < n {
            let end = (begin + self.chunk_size).min(n);
            let mut chunk_dims = vec![end - begin];
            chunk_dims.extend_from_slice(&sample_dims);
            let chunk = Tensor::from_vec(
                images.as_slice()[begin * sample_len..end * sample_len].to_vec(),
                &chunk_dims,
            )
            .map_err(|e| ConvertError::Structure(e.to_string()))?;
            chunks.push(chunk);
            begin = end;
        }

        let (tx, rx) = channel::<(usize, Duration, Result<(Tensor, RunStats), ConvertError>)>();
        let requests = chunks.len();
        for (idx, chunk) in chunks.into_iter().enumerate() {
            let backend = Arc::clone(&self.backend);
            let tx = tx.clone();
            self.pool.execute(move || {
                let start = Instant::now();
                let result = backend.run_batch(&chunk);
                // A closed channel means the caller gave up; nothing to do.
                let _ = tx.send((idx, start.elapsed(), result));
            });
        }
        drop(tx);

        let mut slots: Vec<Option<(Tensor, RunStats)>> = (0..requests).map(|_| None).collect();
        let mut recorder = LatencyRecorder::new();
        let mut first_error: Option<ConvertError> = None;
        for _ in 0..requests {
            let Ok((idx, latency, result)) = rx.recv() else {
                return Err(ConvertError::Structure(
                    "worker pool dropped a request (worker panicked?)".into(),
                ));
            };
            recorder.record(latency);
            match result {
                Ok(ok) => slots[idx] = Some(ok),
                Err(e) => first_error = first_error.or(Some(e)),
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }

        // Reassemble in submission order.
        let mut merged_stats: Option<RunStats> = None;
        let mut logits_data: Vec<f32> = Vec::new();
        let mut classes = 0usize;
        for slot in slots {
            let (logits, stats) = slot.expect("all request slots filled");
            classes = logits.dims()[1];
            logits_data.extend_from_slice(logits.as_slice());
            match &mut merged_stats {
                None => merged_stats = Some(stats),
                Some(m) => m.absorb(&stats),
            }
        }
        let logits = Tensor::from_vec(logits_data, &[n, classes])
            .map_err(|e| ConvertError::Structure(e.to_string()))?;
        let metrics = recorder.summarize(n, start_all.elapsed());
        Ok(BatchReport {
            logits,
            stats: merged_stats.unwrap_or_default(),
            metrics,
        })
    }
}

/// Tolerance before a late execution start counts as an SLO deadline
/// miss.
///
/// An EDF-deadline flush *fires at* the earliest admitted deadline, so in
/// a healthy server `exec_start` trails the deadline by flush-timer wakeup
/// plus pool-handoff jitter — microseconds to a few milliseconds. Genuine
/// overload (workers saturated, batches queueing) lags by tens of
/// milliseconds or more. Counting a miss only past this grace separates
/// the two without a tunable per deployment.
pub const DEADLINE_MISS_GRACE: Duration = Duration::from_millis(10);

/// Streaming inference front-end: one-at-a-time submission, adaptive
/// deadline batching, per-request [`Ticket`] delivery.
///
/// Requests admitted by [`submit`](Self::submit) enter the
/// [`DeadlineBatcher`]'s pending window; a dedicated batcher thread flushes
/// the window to the [`WorkerPool`] when it reaches
/// [`max_batch`](StreamingConfig::max_batch) requests **or** the earliest
/// admitted deadline expires (EDF; plain `submit` inherits
/// [`max_delay`](StreamingConfig::max_delay) as its deadline, while
/// [`submit_with`](Self::submit_with) carries a per-request
/// [`SubmitOptions`]), whichever comes first. Because every backend
/// processes batch samples
/// independently, streamed logits are bit-identical to a closed
/// [`InferenceServer::run`] over the same images, no matter how arrivals
/// interleave into batches (enforced by property test in
/// `tests/runtime_equivalence.rs`).
///
/// [`shutdown`](Self::shutdown) (also run on drop) is graceful: it flushes
/// the pending window, drains every batch already on the worker queue, and
/// only then returns — no admitted ticket is left unresolved.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use rand::SeedableRng;
/// use snn_nn::{DenseLayer, Flatten, Layer, Sequential};
/// use snn_runtime::{CsrEngine, StreamingConfig, StreamingServer};
/// use snn_tensor::Tensor;
/// use ttfs_core::{convert, Base2Kernel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = Sequential::new(vec![
///     Layer::Flatten(Flatten::new()),
///     Layer::Dense(DenseLayer::new(9, 2, &mut rng)),
/// ]);
/// let model = convert(&net, Base2Kernel::paper_default(), 16)?;
/// let engine = Arc::new(CsrEngine::compile(&model, &[1, 3, 3])?);
/// let server = StreamingServer::new(
///     engine,
///     StreamingConfig {
///         threads: 2,
///         max_batch: 4,
///         max_delay: Duration::from_millis(1),
///         ..StreamingConfig::default()
///     },
/// );
///
/// // Requests arrive one at a time; each gets a ticket.
/// let tickets: Vec<_> = (0..3)
///     .map(|_| server.submit(&Tensor::full(&[1, 3, 3], 0.5)))
///     .collect::<Result<_, _>>()?;
/// for ticket in tickets {
///     let response = ticket.wait()?;
///     assert_eq!(response.logits.dims(), &[2]);
///     assert!(response.batch_size >= 1);
/// }
///
/// let metrics = server.shutdown();
/// assert_eq!(metrics.requests, 3);
/// # Ok(())
/// # }
/// ```
pub struct StreamingServer {
    backend: Arc<dyn InferenceBackend>,
    /// `None` once shut down; doubles as the closed flag so a submit can
    /// never race a shutdown (both serialize on this lock, and `Shutdown`
    /// is guaranteed to be the channel's last message).
    submit_tx: Mutex<Option<Sender<BatcherMsg>>>,
    batcher: Mutex<Option<JoinHandle<()>>>,
    pool: Mutex<Option<Arc<WorkerPool>>>,
    recorder: Arc<Mutex<StreamingRecorder>>,
    /// Sample dims are fixed by the first submission; later submissions
    /// must match so any pending window forms a rectangular batch.
    sample_dims: Mutex<Option<Vec<usize>>>,
    next_id: AtomicU64,
    /// Admitted-but-unresolved requests (pending window + worker queue +
    /// in flight); bounded by `max_pending` when nonzero.
    in_flight: Arc<AtomicUsize>,
    /// Span sink shared with the batcher thread and workers; `None` on an
    /// untraced server ([`new`](Self::new)), where the runtime records
    /// nothing regardless of [`SubmitOptions::trace`].
    trace: Option<Arc<TraceCollector>>,
    threads: usize,
    max_batch: usize,
    max_delay: Duration,
    max_pending: usize,
    /// Priority-brownout policy; `None` = disabled.
    brownout: Option<BrownoutConfig>,
    /// Hysteresis state: whether brownout is currently engaged.
    brownout_engaged: AtomicBool,
}

impl StreamingServer {
    /// Builds a streaming server around `backend` and starts its batcher
    /// thread and worker pool.
    pub fn new(backend: Arc<dyn InferenceBackend>, config: StreamingConfig) -> Self {
        Self::build(backend, config, None)
    }

    /// Like [`new`](Self::new), but with a [`TraceCollector`] the batcher
    /// thread and workers record runtime spans into (`queue.wait`,
    /// `batch.flush` with its reason, `batch.exec` and the per-stage
    /// engine spans underneath) for every submission carrying a
    /// [`SubmitOptions::trace`] target. A disabled collector costs one
    /// relaxed atomic load per recording site; logits are bit-identical
    /// either way (tracing never touches the accumulation path).
    pub fn new_traced(
        backend: Arc<dyn InferenceBackend>,
        config: StreamingConfig,
        collector: Arc<TraceCollector>,
    ) -> Self {
        Self::build(backend, config, Some(collector))
    }

    fn build(
        backend: Arc<dyn InferenceBackend>,
        config: StreamingConfig,
        trace: Option<Arc<TraceCollector>>,
    ) -> Self {
        let threads = ServerConfig {
            threads: config.threads,
            chunk_size: 1,
        }
        .resolved_threads();
        let max_batch = config.max_batch.max(1);
        let pool = Arc::new(WorkerPool::new(threads));
        let recorder = Arc::new(Mutex::new(StreamingRecorder::new()));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel::<BatcherMsg>();
        let handle = {
            let backend = Arc::clone(&backend);
            let pool = Arc::clone(&pool);
            let recorder = Arc::clone(&recorder);
            let in_flight = Arc::clone(&in_flight);
            let trace = trace.clone();
            let max_delay = config.max_delay;
            std::thread::Builder::new()
                .name("snn-runtime-batcher".into())
                .spawn(move || {
                    batcher_loop(
                        rx, backend, pool, recorder, in_flight, trace, max_batch, max_delay,
                    )
                })
                .expect("failed to spawn batcher thread")
        };
        Self {
            backend,
            submit_tx: Mutex::new(Some(tx)),
            batcher: Mutex::new(Some(handle)),
            pool: Mutex::new(Some(pool)),
            recorder,
            sample_dims: Mutex::new(None),
            next_id: AtomicU64::new(0),
            in_flight,
            trace,
            threads,
            max_batch,
            max_delay: config.max_delay,
            max_pending: config.max_pending,
            brownout: config.brownout,
            brownout_engaged: AtomicBool::new(false),
        }
    }

    /// The span sink this server records runtime spans into, if it was
    /// built with [`new_traced`](Self::new_traced).
    pub fn trace_collector(&self) -> Option<&Arc<TraceCollector>> {
        self.trace.as_ref()
    }

    /// The wrapped backend's identifier.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// The converted model the wrapped backend executes (a network
    /// front-end uses this to validate request geometry before admitting
    /// traffic into the stream).
    pub fn model(&self) -> &SnnModel {
        self.backend.model()
    }

    /// The per-sample dims this server's backend was compiled for, when
    /// fixed ([`InferenceBackend::input_dims`]).
    pub fn input_dims(&self) -> Option<&[usize]> {
        self.backend.input_dims()
    }

    /// Worker thread count (excluding the batcher thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The count-flush threshold.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The backpressure bound (0 = unbounded).
    pub fn max_pending(&self) -> usize {
        self.max_pending
    }

    /// Admitted-but-unresolved requests right now (pending window + worker
    /// queue + in flight).
    pub fn pending(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Whether [`shutdown`](Self::shutdown) has begun: submissions are
    /// closed and every future `submit` returns
    /// [`SubmitError::Rejected`]. A front-end uses this to tell
    /// unavailability (503) apart from a malformed request (400).
    pub fn is_shut_down(&self) -> bool {
        // All of this server's mutexes guard plain data (handles,
        // counters, recorders) with no multi-step invariants, so a panic
        // under any of them recovers the guard instead of wedging
        // shutdown and `/metrics` forever.
        self.submit_tx
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_none()
    }

    /// Whether priority brownout is currently engaged (admitted count
    /// crossed the high-water mark and has not yet fallen back to the
    /// low-water mark).
    pub fn brownout_engaged(&self) -> bool {
        self.brownout.is_some() && self.brownout_engaged.load(Ordering::Relaxed)
    }

    /// Submits one image (per-sample dims, e.g. `[C, H, W]`) with default
    /// [`SubmitOptions`] and returns the [`Ticket`] its result will arrive
    /// on.
    ///
    /// # Errors
    ///
    /// Same conditions as [`submit_with`](Self::submit_with).
    pub fn submit(&self, image: &Tensor) -> Result<Ticket, SubmitError> {
        self.submit_with(image, SubmitOptions::default())
    }

    /// Submits one image with explicit per-request scheduling options: a
    /// batching deadline (EDF — the pending window flushes when its
    /// earliest admitted deadline expires) and an assembly priority.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::QueueFull`] when
    /// [`max_pending`](StreamingConfig::max_pending) requests are already
    /// admitted and unresolved (backpressure: shed now rather than queue
    /// into unbounded latency; the shed is counted in
    /// [`StreamingMetrics::shed_requests`]), or [`SubmitError::Rejected`]
    /// if the server has shut down, `image` is empty, or its dims differ
    /// from the backend's compiled geometry (for shape-agnostic backends:
    /// from the first submission's dims).
    pub fn submit_with(
        &self,
        image: &Tensor,
        options: SubmitOptions,
    ) -> Result<Ticket, SubmitError> {
        if image.dims().is_empty() || image.as_slice().is_empty() {
            return Err(SubmitError::Rejected(ConvertError::Structure(
                "streamed sample must be a non-empty per-sample tensor".into(),
            )));
        }
        // Backpressure admission: optimistically claim a slot, back out if
        // that overshot the bound (atomic, so concurrent submitters can
        // never jointly exceed it). Unbounded servers still count, so
        // `pending()` stays observable. This runs BEFORE the stream's
        // sample dims are pinned: a shed request must be side-effect free.
        let admitted = self.in_flight.fetch_add(1, Ordering::AcqRel);
        if self.max_pending > 0 && admitted >= self.max_pending {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            self.recorder
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .record_shed(options.priority);
            return Err(SubmitError::QueueFull {
                max_pending: self.max_pending,
            });
        }
        // Priority brownout: between the high- and low-water marks the
        // engaged bit carries hysteresis, so the shed decision cannot flap
        // per-request at the boundary. Engaged, low-priority traffic sheds
        // with a typed error while higher priorities ride on.
        if let Some(brownout) = &self.brownout {
            let engaged = if admitted >= brownout.high_water {
                if !self.brownout_engaged.swap(true, Ordering::Relaxed) {
                    self.on_brownout_transition(true, admitted);
                }
                true
            } else if admitted <= brownout.low_water {
                if self.brownout_engaged.swap(false, Ordering::Relaxed) {
                    self.on_brownout_transition(false, admitted);
                }
                false
            } else {
                self.brownout_engaged.load(Ordering::Relaxed)
            };
            if engaged && options.priority < brownout.shed_below_priority {
                self.in_flight.fetch_sub(1, Ordering::AcqRel);
                self.recorder
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .record_brownout_shed(options.priority);
                return Err(SubmitError::Brownout {
                    priority: options.priority,
                    shed_below_priority: brownout.shed_below_priority,
                });
            }
        }
        let release_slot = || {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
        };
        // Validate geometry against the backend's compiled dims when it
        // has them — per entry, not per process, so two servers fronting
        // models of different dims coexist and a bad first submission
        // can't pin the stream to the wrong geometry. Shape-agnostic
        // backends fall back to first-submission pinning.
        if let Some(expected) = self.backend.input_dims() {
            if expected != image.dims() {
                release_slot();
                return Err(SubmitError::Rejected(ConvertError::Structure(format!(
                    "streamed sample dims {:?} do not match the backend's compiled geometry {:?}",
                    image.dims(),
                    expected
                ))));
            }
        } else {
            let mut dims = self.sample_dims.lock().unwrap_or_else(|e| e.into_inner());
            match dims.as_ref() {
                None => *dims = Some(image.dims().to_vec()),
                Some(expected) if expected == image.dims() => {}
                Some(expected) => {
                    let expected = expected.clone();
                    drop(dims);
                    release_slot();
                    return Err(SubmitError::Rejected(ConvertError::Structure(format!(
                        "streamed sample dims {:?} do not match the stream's dims {:?}",
                        image.dims(),
                        expected
                    ))));
                }
            }
        }
        let (reply, rx) = channel();
        let enqueued = Instant::now();
        let request = PendingRequest {
            image: image.as_slice().to_vec(),
            sample_dims: image.dims().to_vec(),
            enqueued,
            deadline: enqueued + options.deadline.unwrap_or(self.max_delay),
            priority: options.priority,
            // A trace target without a collector records nothing.
            trace: self.trace.as_ref().and(options.trace),
            reply,
        };
        let guard = self.submit_tx.lock().unwrap_or_else(|e| e.into_inner());
        let Some(tx) = guard.as_ref() else {
            release_slot();
            return Err(SubmitError::Rejected(ConvertError::Structure(
                "streaming server is shut down; submissions are closed".into(),
            )));
        };
        tx.send(BatcherMsg::Request(request)).map_err(|_| {
            release_slot();
            SubmitError::Rejected(ConvertError::Structure("batcher thread is gone".into()))
        })?;
        Ok(Ticket::new(
            self.next_id.fetch_add(1, Ordering::Relaxed),
            rx,
            Some(Arc::clone(&self.recorder)),
        ))
    }

    /// Attaches windowed telemetry: every subsequent recording
    /// additionally feeds labeled series in `hub` under `labels`
    /// (conventionally `model`, `version`, `backend`), in addition to —
    /// never instead of — the cumulative recorders. When the backend
    /// exposes fixed compiled geometry
    /// ([`InferenceBackend::input_dims`]), an [`EnergyPricer`] is built
    /// so every executed batch is priced on the `snn-hw` processor
    /// model: responses carry per-image
    /// [`energy_uj`](StreamedResponse::energy_uj), the per-model
    /// windowed `energy_uj` series fills in, and traced requests gain an
    /// `energy.price` span. Telemetry only ever reads timings and event
    /// counters, so logits stay bit-identical with or without it.
    pub fn attach_telemetry(&self, hub: Arc<TelemetryHub>, labels: Labels) {
        let pricer = self
            .backend
            .input_dims()
            .and_then(|dims| EnergyPricer::new(self.backend.model(), dims).ok());
        let sink = TelemetrySink::new(hub, labels, pricer);
        self.recorder
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .set_sink(sink);
    }

    /// Attaches structured logging: the batcher's flush decisions,
    /// failure isolation (batch retries, quarantines) and brownout
    /// transitions start emitting flight-recorder events — and incident
    /// snapshots, when the sink carries an
    /// [`IncidentRecorder`](snn_log::IncidentRecorder). Logging only
    /// ever reads timings and counters, so logits stay bit-identical
    /// with or without it.
    pub fn attach_logging(&self, sink: LogSink) {
        self.recorder
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .set_log_sink(sink);
    }

    /// Logs (and, on engage, snapshots) a brownout hysteresis
    /// transition. Off the submit fast path: called only when the
    /// engaged bit actually flips.
    #[cold]
    fn on_brownout_transition(&self, engaged: bool, depth: usize) {
        let sink = self
            .recorder
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .log_sink()
            .cloned();
        let Some(sink) = sink else { return };
        if engaged {
            snn_log::warn!(
                sink.collector(),
                "runtime.brownout",
                { "depth": depth, "engaged": true },
                "brownout engaged: queue depth {depth} crossed the high-water mark"
            );
            // The recorder lock is released above: the incident snapshot
            // provider reads live stats through that same lock.
            sink.incident(
                "brownout_engage",
                &format!("queue depth {depth} crossed the brownout high-water mark"),
                None,
            );
        } else {
            snn_log::info!(
                sink.collector(),
                "runtime.brownout",
                { "depth": depth, "engaged": false },
                "brownout disengaged: queue depth {depth} fell to the low-water mark"
            );
        }
    }

    /// Snapshot of the streaming metrics accumulated so far. Keeps
    /// working even after a thread panicked under the recorder lock —
    /// observability must survive exactly the situations it exists for.
    pub fn metrics(&self) -> StreamingMetrics {
        self.recorder
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .summarize()
    }

    /// Gracefully shuts down: closes submissions, flushes the pending
    /// window, waits for every dispatched batch to finish (resolving all
    /// outstanding tickets), and returns the final metrics. Idempotent;
    /// also invoked by [`Drop`].
    pub fn shutdown(&self) -> StreamingMetrics {
        if let Some(tx) = self
            .submit_tx
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            // The batcher may already be gone (panic); ignore send failure.
            let _ = tx.send(BatcherMsg::Shutdown);
        }
        if let Some(handle) = self
            .batcher
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            let _ = handle.join();
        }
        // The batcher thread has exited, so its pool Arc is dropped: taking
        // ours makes this the last reference and drop joins the workers
        // after the queued batches drain.
        if let Some(pool) = self.pool.lock().unwrap_or_else(|e| e.into_inner()).take() {
            drop(pool);
        }
        self.metrics()
    }
}

impl Drop for StreamingServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The batcher thread: admits requests into the [`DeadlineBatcher`],
/// sleeps until the earliest of (next message, earliest admitted
/// deadline), and dispatches formed batches to the worker pool. On
/// shutdown or channel disconnect it flushes the remaining window in
/// `max_batch`-sized chunks.
#[allow(clippy::too_many_arguments)] // thread entry point, not an API
fn batcher_loop(
    rx: Receiver<BatcherMsg>,
    backend: Arc<dyn InferenceBackend>,
    pool: Arc<WorkerPool>,
    recorder: Arc<Mutex<StreamingRecorder>>,
    in_flight: Arc<AtomicUsize>,
    trace: Option<Arc<TraceCollector>>,
    max_batch: usize,
    max_delay: Duration,
) {
    let mut batcher: DeadlineBatcher<PendingRequest> = DeadlineBatcher::new(max_batch, max_delay);
    let dispatch = |batch: Vec<PendingRequest>, reason: FlushReason| {
        dispatch_batch(
            &backend, &pool, &recorder, &in_flight, &trace, batch, reason,
        )
    };
    loop {
        let msg = if batcher.is_empty() {
            // Nothing pending: nothing can expire, block indefinitely.
            match rx.recv() {
                Ok(msg) => msg,
                Err(_) => break,
            }
        } else {
            let deadline = batcher.deadline().expect("non-empty window has a deadline");
            let now = Instant::now();
            if let Some(batch) = batcher.poll_expired(now) {
                dispatch(batch, FlushReason::EdfDeadline);
                continue;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(msg) => msg,
                Err(RecvTimeoutError::Timeout) => {
                    if let Some(batch) = batcher.poll_expired(Instant::now()) {
                        dispatch(batch, FlushReason::EdfDeadline);
                    }
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        };
        match msg {
            BatcherMsg::Request(request) => {
                let (deadline, priority) = (request.deadline, request.priority);
                if let Some(batch) = batcher.push_with(request, deadline, priority) {
                    dispatch(batch, FlushReason::MaxBatch);
                }
            }
            BatcherMsg::Shutdown => break,
        }
    }
    // Graceful drain: flush whatever is still pending, respecting
    // max_batch so shutdown batches look like steady-state ones.
    let mut rest = batcher.drain();
    while !rest.is_empty() {
        let tail = if rest.len() > max_batch {
            rest.split_off(max_batch)
        } else {
            Vec::new()
        };
        dispatch(std::mem::replace(&mut rest, tail), FlushReason::Drain);
    }
}

/// Concatenates a formed batch into one `[k, …sample_dims]` tensor, runs it
/// on the pool, and fans the per-row logits back out to each request's
/// ticket, recording queue-wait / execution / end-to-end splits.
/// Releases a batch's backpressure slots on drop, so the release also
/// happens when the worker closure unwinds (a panicking backend must not
/// wedge a bounded server by leaking admissions) or when a closed pool
/// drops the closure unexecuted.
struct SlotRelease {
    in_flight: Arc<AtomicUsize>,
    slots: usize,
}

impl Drop for SlotRelease {
    fn drop(&mut self) {
        self.in_flight.fetch_sub(self.slots, Ordering::AcqRel);
    }
}

#[allow(clippy::too_many_arguments)] // internal dispatch helper, not an API
fn dispatch_batch(
    backend: &Arc<dyn InferenceBackend>,
    pool: &Arc<WorkerPool>,
    recorder: &Arc<Mutex<StreamingRecorder>>,
    in_flight: &Arc<AtomicUsize>,
    trace: &Option<Arc<TraceCollector>>,
    batch: Vec<PendingRequest>,
    reason: FlushReason,
) {
    debug_assert!(!batch.is_empty(), "never dispatch an empty batch");
    let backend = Arc::clone(backend);
    let recorder = Arc::clone(recorder);
    // On the batcher thread, mark the flush decision itself — an
    // instantaneous span per traced request carrying the flush reason.
    let collector = trace.as_ref().filter(|c| c.is_enabled()).map(Arc::clone);
    if let Some(collector) = &collector {
        let now = Instant::now();
        for request in batch.iter() {
            if let Some(target) = request.trace {
                collector.record_span(
                    target.trace,
                    target.parent,
                    "batch.flush",
                    now,
                    now,
                    vec![
                        ("reason", reason.as_str().into()),
                        ("batch_size", batch.len().into()),
                    ],
                );
            }
        }
    }
    // Moved into the closure: every path that resolves (or abandons) the
    // batch — normal completion, backend error, backend panic, pool
    // already closed — releases its slots exactly once.
    let slot_release = SlotRelease {
        in_flight: Arc::clone(in_flight),
        slots: batch.len(),
    };
    let run = move || {
        let _slot_release = slot_release;
        let exec_start = Instant::now();
        let k = batch.len();
        let sample_dims = batch[0].sample_dims.clone();
        let sample_len: usize = sample_dims.iter().product();
        let mut data = Vec::with_capacity(k * sample_len);
        for request in &batch {
            data.extend_from_slice(&request.image);
        }
        let mut batch_dims = vec![k];
        batch_dims.extend_from_slice(&sample_dims);
        // Pre-allocate one `batch.exec` span per traced rider and hang an
        // ambient context under them, so per-stage engine spans fan out
        // into every traced request's tree.
        let exec_spans: Vec<(TraceTarget, u64)> = match &collector {
            Some(c) => batch
                .iter()
                .filter_map(|r| r.trace)
                .map(|t| (t, c.next_span_id()))
                .collect(),
            None => Vec::new(),
        };
        let ctx = collector
            .as_ref()
            .filter(|_| !exec_spans.is_empty())
            .map(|c| {
                push_context(
                    Arc::clone(c),
                    exec_spans
                        .iter()
                        .map(|(t, exec_id)| TraceTarget {
                            trace: t.trace,
                            parent: *exec_id,
                        })
                        .collect(),
                )
            });
        let injector = FaultInjector::global();
        if injector.should(FaultPoint::BackendSlow) {
            std::thread::sleep(injector.slow_delay());
        }
        let outcome = match Tensor::from_vec(data, &batch_dims) {
            Err(e) => Ok(Err(ConvertError::Structure(e.to_string()))),
            Ok(images) => run_batch_guarded(&backend, &images),
        };
        drop(ctx);
        let exec_end = Instant::now();
        let exec_time = exec_end.duration_since(exec_start);
        if let Some(c) = &collector {
            for (target, exec_id) in &exec_spans {
                c.record_span_with_id(
                    *exec_id,
                    target.trace,
                    target.parent,
                    "batch.exec",
                    exec_start,
                    exec_end,
                    vec![
                        ("batch_size", k.into()),
                        ("backend", backend.name().into()),
                        ("ok", u64::from(matches!(outcome, Ok(Ok(_)))).into()),
                    ],
                );
            }
        }
        match outcome {
            Ok(Ok((logits, stats))) => {
                let classes = logits.dims()[1];
                // One lock for the whole batch, not one per request.
                let mut rec = recorder.lock().unwrap_or_else(|e| e.into_inner());
                rec.record_batch(k, exec_time, reason);
                // Priced once per executed batch (O(layers)), attributed
                // per image; 0.0 when no telemetry/pricer is attached.
                let energy_uj = rec.record_batch_energy(&stats, k);
                for (i, request) in batch.into_iter().enumerate() {
                    let row = Tensor::from_vec(
                        logits.as_slice()[i * classes..(i + 1) * classes].to_vec(),
                        &[classes],
                    )
                    .expect("row slice matches classes");
                    let queue_wait = exec_start.saturating_duration_since(request.enqueued);
                    // SLO deadline miss: the batch started executing more
                    // than [`DEADLINE_MISS_GRACE`] after this request's
                    // EDF deadline. The grace absorbs the flush path's own
                    // latency — an EDF-deadline flush *fires at* the
                    // deadline, so without it every deadline-flushed
                    // request would count as late by timer jitter.
                    let deadline_missed = exec_start > request.deadline + DEADLINE_MISS_GRACE;
                    rec.record_request(request.enqueued.elapsed(), queue_wait, deadline_missed);
                    // Record runtime spans BEFORE the reply lands: once
                    // the submitter sees its response, its trace query
                    // must already contain the whole runtime side.
                    if let (Some(c), Some(target)) = (&collector, request.trace) {
                        c.record_span(
                            target.trace,
                            target.parent,
                            "queue.wait",
                            request.enqueued,
                            exec_start,
                            Vec::new(),
                        );
                        if energy_uj > 0.0 {
                            c.record_span(
                                target.trace,
                                target.parent,
                                "energy.price",
                                exec_end,
                                exec_end,
                                vec![("energy_uj", energy_uj.into())],
                            );
                        }
                    }
                    let _ = request.reply.send(Ok(StreamedResponse {
                        logits: row,
                        batch_stats: stats.clone(),
                        queue_wait,
                        exec_time,
                        batch_size: k,
                        energy_uj,
                    }));
                }
            }
            Ok(Err(e)) => {
                for request in batch {
                    let _ = request.reply.send(Err(e.clone()));
                }
            }
            Err(()) => {
                // The batch panicked inside the backend. Blast-radius
                // isolation: re-run every rider individually once, so
                // innocents co-batched with a poison request still get
                // their answer; a request that panics again *solo* is the
                // poison — quarantine it with a typed error instead of
                // letting it take its batchmates (or the next batch it
                // would be retried into) down.
                recorder
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .record_batch_retry();
                for request in batch {
                    let solo_start = Instant::now();
                    let mut solo_dims = vec![1usize];
                    solo_dims.extend_from_slice(&request.sample_dims);
                    let solo_outcome = match Tensor::from_vec(request.image.clone(), &solo_dims) {
                        Err(e) => Ok(Err(ConvertError::Structure(e.to_string()))),
                        Ok(solo) => run_batch_guarded(&backend, &solo),
                    };
                    match solo_outcome {
                        Ok(Ok((logits, stats))) => {
                            let classes = logits.dims()[1];
                            let solo_exec = solo_start.elapsed();
                            let queue_wait = solo_start.saturating_duration_since(request.enqueued);
                            let row =
                                Tensor::from_vec(logits.as_slice()[..classes].to_vec(), &[classes])
                                    .expect("row slice matches classes");
                            let mut rec = recorder.lock().unwrap_or_else(|e| e.into_inner());
                            rec.record_batch(1, solo_exec, reason);
                            let energy_uj = rec.record_batch_energy(&stats, 1);
                            rec.record_request(
                                request.enqueued.elapsed(),
                                queue_wait,
                                solo_start > request.deadline + DEADLINE_MISS_GRACE,
                            );
                            drop(rec);
                            let _ = request.reply.send(Ok(StreamedResponse {
                                logits: row,
                                batch_stats: stats,
                                queue_wait,
                                exec_time: solo_exec,
                                batch_size: 1,
                                energy_uj,
                            }));
                        }
                        Ok(Err(e)) => {
                            let _ = request.reply.send(Err(e));
                        }
                        Err(()) => {
                            let log_sink = {
                                let mut rec = recorder.lock().unwrap_or_else(|e| e.into_inner());
                                rec.record_quarantined();
                                rec.log_sink().cloned()
                            };
                            // Outside the recorder lock: the incident
                            // snapshot provider reads live stats through
                            // that same lock.
                            if let Some(sink) = log_sink {
                                sink.incident(
                                    "quarantine",
                                    "request quarantined after panicking solo on the isolation retry",
                                    request.trace.map(|t| t.trace),
                                );
                            }
                            let _ = request.reply.send(Err(quarantined_error()));
                        }
                    }
                }
            }
        }
    };
    // A closed pool means shutdown already ran; fail the batch gracefully
    // by dropping it — every reply sender drops (tickets see the error)
    // and the dropped SlotRelease returns the batch's admissions.
    let _ = pool.try_execute(run);
}

/// Runs the backend under `catch_unwind`, so one poison request cannot
/// unwind the worker and drop every co-batched ticket. `Err(())` means
/// the backend panicked (the payload is discarded — tickets receive the
/// typed quarantine error, not a panic string). Also the injection site
/// for [`FaultPoint::BackendPanic`].
fn run_batch_guarded(
    backend: &Arc<dyn InferenceBackend>,
    images: &Tensor,
) -> Result<Result<(Tensor, RunStats), ConvertError>, ()> {
    let inject = FaultInjector::global().should(FaultPoint::BackendPanic);
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if inject {
            panic!("injected backend panic");
        }
        backend.run_batch(images)
    }))
    .map_err(|_| ())
}

/// The typed error a quarantined request resolves with.
fn quarantined_error() -> ConvertError {
    ConvertError::Structure(
        "request quarantined: the backend panicked while executing it \
         (isolated after a batch retry)"
            .into(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrEngine;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_nn::{ActivationLayer, DenseLayer, Flatten, Layer, Relu, Sequential};
    use snn_sim::EventSnn;
    use ttfs_core::{convert, Base2Kernel, SnnModel};

    fn dense_model() -> SnnModel {
        let mut rng = StdRng::seed_from_u64(31);
        let net = Sequential::new(vec![
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(12, 8, &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::Dense(DenseLayer::new(8, 3, &mut rng)),
        ]);
        convert(&net, Base2Kernel::paper_default(), 24).unwrap()
    }

    #[test]
    fn pooled_run_matches_single_thread_order() {
        let model = dense_model();
        let mut rng = StdRng::seed_from_u64(32);
        let x = snn_tensor::uniform(&[13, 1, 3, 4], 0.0, 1.0, &mut rng);
        let single = EventSnn::new(&model).run(&x).unwrap().0;

        let backend = Arc::new(CsrEngine::compile(&model, &[1, 3, 4]).unwrap());
        let server = InferenceServer::new(
            backend,
            ServerConfig {
                threads: 4,
                chunk_size: 3, // uneven last chunk on purpose
            },
        );
        let report = server.run(&x).unwrap();
        assert_eq!(report.logits.dims(), &[13, 3]);
        assert_eq!(report.logits.as_slice(), single.as_slice());
        assert_eq!(report.stats.batch, 13);
        assert_eq!(report.metrics.requests, 5);
        assert_eq!(report.metrics.images, 13);
        assert!(report.metrics.images_per_sec > 0.0);
        assert!(report.metrics.latency_p99_us >= report.metrics.latency_p50_us);
    }

    #[test]
    fn stats_merge_across_chunks() {
        let model = dense_model();
        let mut rng = StdRng::seed_from_u64(33);
        let x = snn_tensor::uniform(&[8, 1, 3, 4], 0.0, 1.0, &mut rng);
        let reference_stats = EventSnn::new(&model).run(&x).unwrap().1;

        let backend = Arc::new(EventSnn::new(&model));
        let server = InferenceServer::new(
            backend,
            ServerConfig {
                threads: 2,
                chunk_size: 2,
            },
        );
        let report = server.run(&x).unwrap();
        assert_eq!(report.stats, reference_stats);
    }

    struct PanickingBackend(SnnModel);

    impl crate::InferenceBackend for PanickingBackend {
        fn name(&self) -> &'static str {
            "panic"
        }
        fn model(&self) -> &SnnModel {
            &self.0
        }
        fn run_batch(&self, _images: &Tensor) -> Result<(Tensor, RunStats), ConvertError> {
            panic!("backend exploded mid-request");
        }
    }

    #[test]
    fn backend_panic_surfaces_as_error_and_pool_survives() {
        let model = dense_model();
        let server = InferenceServer::new(
            Arc::new(PanickingBackend(model.clone())),
            ServerConfig {
                threads: 2,
                chunk_size: 2,
            },
        );
        let x = Tensor::zeros(&[4, 1, 3, 4]);
        let err = server.run(&x).unwrap_err();
        assert!(
            format!("{err:?}").contains("dropped a request"),
            "structured error, got {err:?}"
        );
        // The pool must survive the panicking jobs for later requests.
        let err2 = server.run(&x).unwrap_err();
        assert!(format!("{err2:?}").contains("dropped a request"));
    }

    /// Panics only when the magic poison value rides in the batch;
    /// otherwise defers to a real engine. The blast-radius tests use it to
    /// co-batch one poison request with innocents.
    struct PoisonValueBackend {
        inner: CsrEngine,
    }

    const POISON: f32 = 99.0;

    impl crate::InferenceBackend for PoisonValueBackend {
        fn name(&self) -> &'static str {
            "poison-value"
        }
        fn model(&self) -> &SnnModel {
            self.inner.model()
        }
        fn input_dims(&self) -> Option<&[usize]> {
            self.inner.input_dims()
        }
        fn run_batch(&self, images: &Tensor) -> Result<(Tensor, RunStats), ConvertError> {
            if images.as_slice().contains(&POISON) {
                panic!("poison value in batch");
            }
            self.inner.run_batch(images)
        }
    }

    #[test]
    fn poison_request_is_quarantined_and_co_batched_innocents_survive() {
        let model = dense_model();
        let engine = CsrEngine::compile(&model, &[1, 3, 4]).unwrap();
        let innocent = Tensor::full(&[1, 3, 4], 0.5);
        let expected = {
            let batched = Tensor::full(&[1, 1, 3, 4], 0.5);
            let (logits, _) = engine.run_batch(&batched).unwrap();
            logits.as_slice().to_vec()
        };
        let server = StreamingServer::new(
            Arc::new(PoisonValueBackend { inner: engine }),
            StreamingConfig {
                threads: 1,
                max_batch: 4,
                max_delay: Duration::from_millis(200),
                ..StreamingConfig::default()
            },
        );
        // Three innocents and one poison request share one count-flushed
        // batch of four.
        let innocents: Vec<Ticket> = (0..3).map(|_| server.submit(&innocent).unwrap()).collect();
        let poison_ticket = server.submit(&Tensor::full(&[1, 3, 4], POISON)).unwrap();
        for ticket in innocents {
            let response = ticket
                .wait()
                .expect("innocent must survive the poison batchmate");
            assert_eq!(response.logits.as_slice(), &expected[..], "bit-exact");
            assert_eq!(response.batch_size, 1, "isolation retries run solo");
        }
        let err = poison_ticket.wait().unwrap_err();
        assert!(
            err.to_string().contains("quarantined"),
            "poison request gets the typed quarantine error, got: {err}"
        );
        // The server stays fully serviceable afterwards.
        let after = server.submit(&innocent).unwrap().wait().unwrap();
        assert_eq!(after.logits.as_slice(), &expected[..]);
        let metrics = server.shutdown();
        assert_eq!(metrics.batch_retries, 1, "one batch was re-run");
        assert_eq!(metrics.quarantined, 1, "exactly the poison request");
        assert_eq!(metrics.requests, 4, "3 innocents + 1 clean follow-up");
    }

    /// Holds every batch long enough for submissions to pile up, so the
    /// brownout test can cross the high-water mark deterministically.
    struct SlowBackend {
        inner: CsrEngine,
        delay: Duration,
    }

    impl crate::InferenceBackend for SlowBackend {
        fn name(&self) -> &'static str {
            "slow"
        }
        fn model(&self) -> &SnnModel {
            self.inner.model()
        }
        fn input_dims(&self) -> Option<&[usize]> {
            self.inner.input_dims()
        }
        fn run_batch(&self, images: &Tensor) -> Result<(Tensor, RunStats), ConvertError> {
            std::thread::sleep(self.delay);
            self.inner.run_batch(images)
        }
    }

    #[test]
    fn brownout_sheds_low_priority_and_recovers_after_drain() {
        let model = dense_model();
        let engine = CsrEngine::compile(&model, &[1, 3, 4]).unwrap();
        let server = StreamingServer::new(
            Arc::new(SlowBackend {
                inner: engine,
                delay: Duration::from_millis(40),
            }),
            StreamingConfig {
                threads: 1,
                max_batch: 1,
                max_delay: Duration::ZERO,
                brownout: Some(BrownoutConfig {
                    high_water: 2,
                    low_water: 0,
                    shed_below_priority: 1,
                }),
                ..StreamingConfig::default()
            },
        );
        let image = Tensor::full(&[1, 3, 4], 0.5);
        // Pile up 3 high-priority requests; the third submission sees 2
        // admitted-but-unresolved and engages brownout — but rides on,
        // because its priority clears the shed threshold.
        let high: Vec<Ticket> = (0..3)
            .map(|_| {
                server
                    .submit_with(&image, SubmitOptions::default().priority(1))
                    .expect("high priority is never browned out")
            })
            .collect();
        assert!(server.brownout_engaged(), "high-water mark crossed");
        let err = server
            .submit_with(&image, SubmitOptions::default().priority(0))
            .expect_err("low priority must shed while engaged");
        assert!(
            matches!(
                err,
                SubmitError::Brownout {
                    priority: 0,
                    shed_below_priority: 1
                }
            ),
            "typed brownout error, got {err:?}"
        );
        for ticket in high {
            ticket.wait().expect("admitted requests still resolve");
        }
        // The reply lands slightly before the worker closure releases its
        // admission slot; wait for the count to actually reach zero.
        while server.pending() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Everything drained: the next submission observes the low-water
        // mark, disengages, and priority-0 traffic is admitted again.
        let after = server
            .submit_with(&image, SubmitOptions::default().priority(0))
            .expect("brownout must disengage at the low-water mark");
        after.wait().unwrap();
        assert!(!server.brownout_engaged());
        let metrics = server.shutdown();
        assert_eq!(metrics.brownout_shed_requests, 1);
        assert_eq!(metrics.shed_requests, 0, "brownout sheds are counted apart");
        assert_eq!(metrics.requests, 4);
    }

    #[test]
    fn metrics_and_shutdown_survive_a_poisoned_recorder_lock() {
        let model = dense_model();
        let backend = Arc::new(CsrEngine::compile(&model, &[1, 3, 4]).unwrap());
        let server = StreamingServer::new(
            backend,
            StreamingConfig {
                threads: 2,
                ..StreamingConfig::default()
            },
        );
        // Poison the recorder lock the way production would: a thread
        // panics while holding it.
        let recorder = Arc::clone(&server.recorder);
        let _ = std::thread::spawn(move || {
            let _guard = recorder.lock().unwrap();
            panic!("deliberately poisoning the recorder lock");
        })
        .join();
        assert!(server.recorder.is_poisoned(), "lock must be poisoned");
        // Metrics, serving and shutdown all keep working.
        let before = server.metrics();
        let ticket = server.submit(&Tensor::full(&[1, 3, 4], 0.5)).unwrap();
        ticket.wait().expect("serving survives the poisoned lock");
        let metrics = server.shutdown();
        assert_eq!(metrics.requests, before.requests + 1);
    }

    #[test]
    fn geometry_error_propagates() {
        let model = dense_model();
        let backend = Arc::new(CsrEngine::compile(&model, &[1, 3, 4]).unwrap());
        let server = InferenceServer::new(backend, ServerConfig::default());
        let bad = Tensor::zeros(&[4, 1, 5, 5]);
        assert!(server.run(&bad).is_err());
        let scalarish = Tensor::zeros(&[4]);
        assert!(server.run(&scalarish).is_err());
    }
}
