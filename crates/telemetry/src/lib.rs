//! Windowed time-series metrics for the serving stack.
//!
//! The cumulative recorders in `snn-runtime` answer "what happened since
//! boot"; this crate answers "what is happening *now*". Each series is a
//! ring of fixed-width time slots — memory stays bounded no matter how
//! long the process runs — and queries merge the slots covering the last
//! 10 s / 1 m / 5 m into sliding-window rates and quantiles:
//!
//! - [`WindowCounter`] — 1-second slots, 300-slot ring (5 minutes of
//!   history). Accumulates `f64` so the same type serves request counts
//!   and energy-µJ sums; exposes a cumulative total plus per-window sums
//!   and rates.
//! - [`WindowGauge`] — last-written value (resident bytes, queue depth).
//! - [`WindowHistogram`] — 5-second slots, 60-slot ring, log-linear bins
//!   (base-2 octaves split into 4 linear sub-bins, so every bin is at
//!   most 25 % wide); window quantiles are nearest-rank over the merged
//!   bins and return the bin's upper edge, overestimating the exact
//!   sample quantile by at most one bin width (~25 %).
//!
//! Series are grouped into named families inside a [`TelemetryHub`] and
//! addressed by [`Labels`] (`model`, `route`, `flush_reason`, …). Every
//! family is cardinality-capped: past [`MAX_SERIES_PER_FAMILY`] distinct
//! label sets, further lookups collapse into one reserved overflow
//! series instead of growing without bound. Lookups hold the hub lock
//! briefly; recording holds only the per-series lock, and hot paths are
//! expected to cache the `Arc` handles a lookup returns.
//!
//! Timestamps are explicit: every mutation and query takes `now_s`,
//! seconds since the hub's epoch ([`TelemetryHub::now_s`] supplies it in
//! production, tests pass synthetic values for deterministic rotation
//! coverage). The [`slo`] module layers multi-window burn rates on top:
//! a fast (1 m) and slow (5 m) error-budget burn per model, reduced to
//! an `ok` / `warn` / `burning` state.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// The sliding windows every snapshot reports, in seconds: 10 s, 1 m, 5 m.
pub const WINDOWS_S: [u64; 3] = [10, 60, 300];

/// Counter/gauge slot width, seconds.
const COUNTER_SLOT_S: u64 = 1;
/// Counter ring length: 300 × 1 s = the longest window.
const COUNTER_SLOTS: usize = 300;
/// Histogram slot width, seconds. Coarser than counters because each
/// slot carries a full bin array; 5 divides every window in
/// [`WINDOWS_S`] so window edges align with slot edges.
const HIST_SLOT_S: u64 = 5;
/// Histogram ring length: 60 × 5 s = the longest window.
const HIST_SLOTS: usize = 60;

/// Distinct label sets a family holds before further lookups collapse
/// into the reserved overflow series (see [`overflow_labels`]).
pub const MAX_SERIES_PER_FAMILY: usize = 64;

/// Stamp value meaning "slot never written".
const STAMP_EMPTY: u64 = u64::MAX;

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// WindowCounter
// ---------------------------------------------------------------------------

struct CounterState {
    /// Per-slot accumulated value.
    slots: [f64; COUNTER_SLOTS],
    /// Absolute slot index (`now_s / slot width`) each slot was last
    /// written at; a mismatch on touch means the ring wrapped and the
    /// slot holds stale data to be discarded lazily.
    stamps: [u64; COUNTER_SLOTS],
    total: f64,
}

/// Monotone accumulating series over a ring of 1-second slots.
///
/// Accumulates `f64`, so it serves both event counts (`add(now, 1.0)`)
/// and measured sums such as energy in µJ. The cumulative
/// [`total`](Self::total) is exact forever; [`window_sum`](Self::window_sum)
/// and [`rate_per_s`](Self::rate_per_s) cover at most the last
/// 300 seconds.
pub struct WindowCounter {
    inner: Mutex<CounterState>,
}

impl WindowCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(CounterState {
                slots: [0.0; COUNTER_SLOTS],
                stamps: [STAMP_EMPTY; COUNTER_SLOTS],
                total: 0.0,
            }),
        }
    }

    /// Adds `v` at `now_s` seconds since the hub epoch.
    pub fn add(&self, now_s: u64, v: f64) {
        let idx = now_s / COUNTER_SLOT_S;
        let slot = (idx % COUNTER_SLOTS as u64) as usize;
        let mut st = lock_recover(&self.inner);
        if st.stamps[slot] != idx {
            st.slots[slot] = 0.0;
            st.stamps[slot] = idx;
        }
        st.slots[slot] += v;
        st.total += v;
    }

    /// Cumulative sum of everything ever added.
    pub fn total(&self) -> f64 {
        lock_recover(&self.inner).total
    }

    /// Sum over the last `window_s` seconds ending at `now_s`
    /// (inclusive of the current, still-filling slot). Windows longer
    /// than the ring are clamped to the ring span.
    pub fn window_sum(&self, now_s: u64, window_s: u64) -> f64 {
        let now_idx = now_s / COUNTER_SLOT_S;
        let span = (window_s / COUNTER_SLOT_S).clamp(1, COUNTER_SLOTS as u64);
        let st = lock_recover(&self.inner);
        let mut sum = 0.0;
        for back in 0..span {
            let Some(idx) = now_idx.checked_sub(back) else {
                break;
            };
            let slot = (idx % COUNTER_SLOTS as u64) as usize;
            if st.stamps[slot] == idx {
                sum += st.slots[slot];
            }
        }
        sum
    }

    /// [`window_sum`](Self::window_sum) divided by the window width —
    /// events (or units) per second.
    pub fn rate_per_s(&self, now_s: u64, window_s: u64) -> f64 {
        let span = (window_s / COUNTER_SLOT_S).clamp(1, COUNTER_SLOTS as u64) as f64;
        self.window_sum(now_s, window_s) / (span * COUNTER_SLOT_S as f64)
    }
}

impl Default for WindowCounter {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// WindowGauge
// ---------------------------------------------------------------------------

/// Last-value series (queue depth, resident bytes, ring occupancy).
pub struct WindowGauge {
    value: Mutex<f64>,
}

impl WindowGauge {
    /// Creates a gauge holding 0.
    pub fn new() -> Self {
        Self {
            value: Mutex::new(0.0),
        }
    }

    /// Overwrites the gauge value.
    pub fn set(&self, v: f64) {
        *lock_recover(&self.value) = v;
    }

    /// Reads the last-set value (0 if never set).
    pub fn get(&self) -> f64 {
        *lock_recover(&self.value)
    }
}

impl Default for WindowGauge {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// WindowHistogram
// ---------------------------------------------------------------------------

/// Number of base-2 octaves the bins cover: values 1 µs .. 2^26 µs
/// (~67 s); anything slower lands in one overflow bin.
const HIST_OCTAVES: usize = 26;
/// Linear sub-bins per octave; 4 keeps every bin ≤ 25 % wide.
const HIST_SUBS: usize = 4;
/// Finite bins plus one overflow bin.
const HIST_BINS: usize = HIST_OCTAVES * HIST_SUBS + 1;

/// Bin index for a value in µs. Monotone non-decreasing in `us`, so
/// nearest-rank over bins agrees with nearest-rank over samples up to
/// bin width.
fn hist_bin(us: u64) -> usize {
    if us <= 1 {
        return 0;
    }
    let octave = (u64::BITS - 1 - us.leading_zeros()) as usize;
    if octave >= HIST_OCTAVES {
        return HIST_BINS - 1;
    }
    let base = 1u64 << octave;
    let sub = ((us - base) * HIST_SUBS as u64 / base) as usize;
    octave * HIST_SUBS + sub.min(HIST_SUBS - 1)
}

/// Inclusive upper edge of a bin, µs. The overflow bin reports the top
/// of the finite range.
fn hist_bin_upper_us(bin: usize) -> f64 {
    if bin >= HIST_BINS - 1 {
        return (1u64 << HIST_OCTAVES) as f64;
    }
    let octave = bin / HIST_SUBS;
    let sub = bin % HIST_SUBS;
    (1u64 << octave) as f64 * (1.0 + (sub + 1) as f64 / HIST_SUBS as f64)
}

struct HistSlot {
    stamp: u64,
    bins: [u32; HIST_BINS],
}

struct HistState {
    slots: Vec<HistSlot>,
    count: u64,
    sum_us: f64,
}

/// Latency histogram over a ring of 5-second slots with log-linear
/// bins (4 linear sub-bins per base-2 octave, 1 µs .. 2^26 µs).
///
/// Window quantiles are nearest-rank over the merged window bins and
/// return the containing bin's **upper edge**, so they overestimate the
/// exact sample quantile by at most one bin width — ≤ 25 % relative
/// error (plus rounding to whole µs for values under 4 µs).
pub struct WindowHistogram {
    inner: Mutex<HistState>,
}

impl WindowHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(HistState {
                slots: (0..HIST_SLOTS)
                    .map(|_| HistSlot {
                        stamp: STAMP_EMPTY,
                        bins: [0; HIST_BINS],
                    })
                    .collect(),
                count: 0,
                sum_us: 0.0,
            }),
        }
    }

    /// Records one observation of `us` microseconds at `now_s`.
    pub fn record_us(&self, now_s: u64, us: u64) {
        let idx = now_s / HIST_SLOT_S;
        let slot = (idx % HIST_SLOTS as u64) as usize;
        let mut st = lock_recover(&self.inner);
        let s = &mut st.slots[slot];
        if s.stamp != idx {
            s.bins = [0; HIST_BINS];
            s.stamp = idx;
        }
        s.bins[hist_bin(us)] += 1;
        st.count += 1;
        st.sum_us += us as f64;
    }

    /// Total observations ever recorded (exact, not windowed).
    pub fn count(&self) -> u64 {
        lock_recover(&self.inner).count
    }

    /// Sum of all observations ever recorded, µs (exact, not windowed).
    pub fn sum_us(&self) -> f64 {
        lock_recover(&self.inner).sum_us
    }

    /// Merged bins over the last `window_s` seconds ending at `now_s`.
    fn window_bins(&self, now_s: u64, window_s: u64) -> ([u64; HIST_BINS], u64) {
        let now_idx = now_s / HIST_SLOT_S;
        let span = (window_s.div_ceil(HIST_SLOT_S)).clamp(1, HIST_SLOTS as u64);
        let st = lock_recover(&self.inner);
        let mut merged = [0u64; HIST_BINS];
        let mut count = 0u64;
        for back in 0..span {
            let Some(idx) = now_idx.checked_sub(back) else {
                break;
            };
            let slot = &st.slots[(idx % HIST_SLOTS as u64) as usize];
            if slot.stamp == idx {
                for (m, &b) in merged.iter_mut().zip(slot.bins.iter()) {
                    *m += b as u64;
                    count += b as u64;
                }
            }
        }
        (merged, count)
    }

    /// Observations within the last `window_s` seconds ending at `now_s`.
    pub fn window_count(&self, now_s: u64, window_s: u64) -> u64 {
        self.window_bins(now_s, window_s).1
    }

    /// Nearest-rank `q`-quantile (0 ≤ q ≤ 1) over the last `window_s`
    /// seconds, µs; 0 when the window is empty. Returns the upper edge
    /// of the bin holding the rank — see the type docs for the
    /// tolerance this implies.
    pub fn window_quantile_us(&self, now_s: u64, window_s: u64, q: f64) -> f64 {
        let (bins, count) = self.window_bins(now_s, window_s);
        if count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (i, &b) in bins.iter().enumerate() {
            cumulative += b;
            if cumulative >= rank {
                return hist_bin_upper_us(i);
            }
        }
        hist_bin_upper_us(HIST_BINS - 1)
    }
}

impl Default for WindowHistogram {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// Labels
// ---------------------------------------------------------------------------

/// A sorted, duplicate-free set of label pairs addressing one series
/// within a family. Keys are static (the stack's label vocabulary is
/// fixed: `model`, `version`, `route`, `backend`, `priority`,
/// `flush_reason`); values are owned strings.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Labels {
    pairs: Vec<(&'static str, String)>,
}

impl Labels {
    /// Creates an empty label set (the family's unlabeled series).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the set with `key=value` added, replacing any existing
    /// value for `key` and keeping keys sorted.
    pub fn with(mut self, key: &'static str, value: impl Into<String>) -> Self {
        let value = value.into();
        match self.pairs.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(i) => self.pairs[i].1 = value,
            Err(i) => self.pairs.insert(i, (key, value)),
        }
        self
    }

    /// The sorted pairs.
    pub fn pairs(&self) -> &[(&'static str, String)] {
        &self.pairs
    }

    /// Value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .binary_search_by(|(k, _)| (*k).cmp(key))
            .ok()
            .map(|i| self.pairs[i].1.as_str())
    }

    /// Canonical map key: `k1=v1,k2=v2` over the sorted pairs.
    pub fn key(&self) -> String {
        let mut out = String::new();
        for (i, (k, v)) in self.pairs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push('=');
            out.push_str(v);
        }
        out
    }
}

/// The reserved label set all over-cap lookups collapse into.
pub fn overflow_labels() -> Labels {
    Labels::new().with("overflow", "true")
}

// ---------------------------------------------------------------------------
// Hub
// ---------------------------------------------------------------------------

/// Canonical family names shared by the recorders (runtime, gateway)
/// and the consumers (`/v1/stats`, dashboard, bench), so both sides
/// agree without string drift.
pub mod families {
    /// Completed inferences per model (counter, labels `model`/`version`/`backend`).
    pub const REQUESTS: &str = "requests";
    /// End-to-end latency per model, µs (histogram).
    pub const E2E_US: &str = "e2e_us";
    /// Queue-wait latency per model, µs (histogram).
    pub const QUEUE_WAIT_US: &str = "queue_wait_us";
    /// Batch execution latency per model, µs (histogram).
    pub const EXEC_US: &str = "exec_us";
    /// Backpressure sheds (counter, extra label `priority`).
    pub const SHEDS: &str = "sheds";
    /// Priority-brownout sheds (counter, extra label `priority`).
    pub const BROWNOUT_SHEDS: &str = "brownout_sheds";
    /// Ticket wait-timeout expiries (counter).
    pub const WAIT_TIMEOUTS: &str = "wait_timeouts";
    /// Requests that completed after their declared deadline (counter).
    pub const DEADLINE_MISSES: &str = "deadline_misses";
    /// Priced energy, µJ summed per model (counter; divide by
    /// [`REQUESTS`] over the same window for µJ per inference).
    pub const ENERGY_UJ: &str = "energy_uj";
    /// Formed batches (counter, extra label `flush_reason`).
    pub const FLUSHES: &str = "flushes";
    /// HTTP requests per gateway route (counter, labels `route`).
    pub const HTTP_REQUESTS: &str = "http_requests";
    /// HTTP handling latency per route, µs (histogram, labels `route`).
    pub const HTTP_E2E_US: &str = "http_e2e_us";
}

struct Family<T> {
    series: BTreeMap<String, (Labels, Arc<T>)>,
}

impl<T> Family<T> {
    fn new() -> Self {
        Self {
            series: BTreeMap::new(),
        }
    }

    fn get_or_insert(&mut self, labels: &Labels, make: impl Fn() -> T) -> Arc<T> {
        let key = labels.key();
        if let Some((_, s)) = self.series.get(&key) {
            return Arc::clone(s);
        }
        let (key, labels) = if self.series.len() >= MAX_SERIES_PER_FAMILY {
            let ov = overflow_labels();
            (ov.key(), ov)
        } else {
            (key, labels.clone())
        };
        Arc::clone(
            &self
                .series
                .entry(key)
                .or_insert_with(|| (labels, Arc::new(make())))
                .1,
        )
    }
}

/// Registry of labeled windowed series, grouped into named families.
///
/// One hub serves the whole process: the streaming server, registry and
/// gateway all record into it, and `/v1/stats` snapshots it. The hub
/// owns the epoch every `now_s` timestamp is relative to.
pub struct TelemetryHub {
    epoch: Instant,
    counters: Mutex<BTreeMap<String, Family<WindowCounter>>>,
    gauges: Mutex<BTreeMap<String, Family<WindowGauge>>>,
    histograms: Mutex<BTreeMap<String, Family<WindowHistogram>>>,
}

impl TelemetryHub {
    /// Creates an empty hub; the epoch is now.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// Seconds since the hub epoch — the `now_s` to pass to series
    /// mutations and window queries.
    pub fn now_s(&self) -> u64 {
        self.epoch.elapsed().as_secs()
    }

    /// The counter series for `labels` in `family`, created on first
    /// lookup. Past [`MAX_SERIES_PER_FAMILY`] distinct label sets the
    /// family's reserved overflow series is returned instead. Cache the
    /// handle on hot paths.
    pub fn counter(&self, family: &str, labels: &Labels) -> Arc<WindowCounter> {
        lock_recover(&self.counters)
            .entry(family.to_string())
            .or_insert_with(Family::new)
            .get_or_insert(labels, WindowCounter::new)
    }

    /// The gauge series for `labels` in `family` (same caching and
    /// overflow behavior as [`counter`](Self::counter)).
    pub fn gauge(&self, family: &str, labels: &Labels) -> Arc<WindowGauge> {
        lock_recover(&self.gauges)
            .entry(family.to_string())
            .or_insert_with(Family::new)
            .get_or_insert(labels, WindowGauge::new)
    }

    /// The histogram series for `labels` in `family` (same caching and
    /// overflow behavior as [`counter`](Self::counter)).
    pub fn histogram(&self, family: &str, labels: &Labels) -> Arc<WindowHistogram> {
        lock_recover(&self.histograms)
            .entry(family.to_string())
            .or_insert_with(Family::new)
            .get_or_insert(labels, WindowHistogram::new)
    }

    /// Snapshots every series at `now_s`: per-window sums/rates for
    /// counters, values for gauges, per-window counts and p50/p95/p99
    /// for histograms. Families and series come out sorted by name and
    /// label key, so the output is deterministic.
    pub fn snapshot(&self, now_s: u64) -> HubSnapshot {
        let counters = lock_recover(&self.counters)
            .iter()
            .map(|(name, fam)| FamilySnapshot {
                name: name.clone(),
                series: fam
                    .series
                    .values()
                    .map(|(labels, c)| SeriesSnapshot {
                        labels: labels.clone(),
                        value: CounterSnapshot {
                            total: c.total(),
                            windows: WINDOWS_S
                                .iter()
                                .map(|&w| WindowSum {
                                    window_s: w,
                                    sum: c.window_sum(now_s, w),
                                    rate_per_s: c.rate_per_s(now_s, w),
                                })
                                .collect(),
                        },
                    })
                    .collect(),
            })
            .collect();
        let gauges = lock_recover(&self.gauges)
            .iter()
            .map(|(name, fam)| FamilySnapshot {
                name: name.clone(),
                series: fam
                    .series
                    .values()
                    .map(|(labels, g)| SeriesSnapshot {
                        labels: labels.clone(),
                        value: GaugeSnapshot { value: g.get() },
                    })
                    .collect(),
            })
            .collect();
        let histograms = lock_recover(&self.histograms)
            .iter()
            .map(|(name, fam)| FamilySnapshot {
                name: name.clone(),
                series: fam
                    .series
                    .values()
                    .map(|(labels, h)| SeriesSnapshot {
                        labels: labels.clone(),
                        value: HistogramWindows {
                            count: h.count(),
                            sum_us: h.sum_us(),
                            windows: WINDOWS_S
                                .iter()
                                .map(|&w| WindowQuantiles {
                                    window_s: w,
                                    count: h.window_count(now_s, w),
                                    p50_us: h.window_quantile_us(now_s, w, 0.50),
                                    p95_us: h.window_quantile_us(now_s, w, 0.95),
                                    p99_us: h.window_quantile_us(now_s, w, 0.99),
                                })
                                .collect(),
                        },
                    })
                    .collect(),
            })
            .collect();
        HubSnapshot {
            now_s,
            counters,
            gauges,
            histograms,
        }
    }
}

impl Default for TelemetryHub {
    fn default() -> Self {
        Self::new()
    }
}

/// One counter window in a [`CounterSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSum {
    /// Window width, seconds.
    pub window_s: u64,
    /// Sum over the window.
    pub sum: f64,
    /// `sum / window_s` — per-second rate.
    pub rate_per_s: f64,
}

/// Snapshot of one [`WindowCounter`].
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnapshot {
    /// Cumulative total since series creation.
    pub total: f64,
    /// One entry per window in [`WINDOWS_S`].
    pub windows: Vec<WindowSum>,
}

/// Snapshot of one [`WindowGauge`].
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    /// Last-set value.
    pub value: f64,
}

/// One histogram window in a [`HistogramWindows`].
#[derive(Debug, Clone, PartialEq)]
pub struct WindowQuantiles {
    /// Window width, seconds.
    pub window_s: u64,
    /// Observations within the window.
    pub count: u64,
    /// Median, µs (bin upper edge; 0 when empty).
    pub p50_us: f64,
    /// 95th percentile, µs.
    pub p95_us: f64,
    /// 99th percentile, µs.
    pub p99_us: f64,
}

/// Snapshot of one [`WindowHistogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramWindows {
    /// Total observations since series creation (not windowed).
    pub count: u64,
    /// Sum of all observations, µs (not windowed).
    pub sum_us: f64,
    /// One entry per window in [`WINDOWS_S`].
    pub windows: Vec<WindowQuantiles>,
}

/// One series within a [`FamilySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot<T> {
    /// The series' label set.
    pub labels: Labels,
    /// The windowed values.
    pub value: T,
}

/// All series of one family.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySnapshot<T> {
    /// Family name (see [`families`]).
    pub name: String,
    /// Series sorted by label key.
    pub series: Vec<SeriesSnapshot<T>>,
}

/// Full hub snapshot at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct HubSnapshot {
    /// The `now_s` the snapshot was taken at.
    pub now_s: u64,
    /// Counter families sorted by name.
    pub counters: Vec<FamilySnapshot<CounterSnapshot>>,
    /// Gauge families sorted by name.
    pub gauges: Vec<FamilySnapshot<GaugeSnapshot>>,
    /// Histogram families sorted by name.
    pub histograms: Vec<FamilySnapshot<HistogramWindows>>,
}

impl HubSnapshot {
    /// Finds a counter series by family name and labels.
    pub fn counter(&self, family: &str, labels: &Labels) -> Option<&CounterSnapshot> {
        self.counters
            .iter()
            .find(|f| f.name == family)?
            .series
            .iter()
            .find(|s| &s.labels == labels)
            .map(|s| &s.value)
    }

    /// Finds a histogram series by family name and labels.
    pub fn histogram(&self, family: &str, labels: &Labels) -> Option<&HistogramWindows> {
        self.histograms
            .iter()
            .find(|f| f.name == family)?
            .series
            .iter()
            .find(|s| &s.labels == labels)
            .map(|s| &s.value)
    }
}

// ---------------------------------------------------------------------------
// SLO
// ---------------------------------------------------------------------------

/// Multi-window SLO burn rates.
///
/// An SLO objective is the tolerated bad-event ratio (deadline misses
/// at 1 %, sheds at 5 %). The **burn rate** is `observed ratio /
/// objective`: burn 1.0 exhausts exactly the error budget, burn 10
/// exhausts it ten times as fast. Following the multi-window pattern,
/// the state combines a fast window (1 m, catches sudden regressions)
/// and a slow window (5 m, filters blips):
///
/// - both windows ≥ 1.0 → `burning` (sustained budget burn — page),
/// - either window ≥ 1.0 → `warn` (starting or recovering),
/// - neither → `ok`.
pub mod slo {
    /// Tolerated deadline-miss ratio (1 %).
    pub const MISS_OBJECTIVE: f64 = 0.01;
    /// Tolerated shed ratio (5 %).
    pub const SHED_OBJECTIVE: f64 = 0.05;
    /// Fast burn window, seconds (1 m).
    pub const FAST_WINDOW_S: u64 = 60;
    /// Slow burn window, seconds (5 m).
    pub const SLOW_WINDOW_S: u64 = 300;

    /// `bad / total` guarded against an empty window.
    pub fn ratio(bad: f64, total: f64) -> f64 {
        if total > 0.0 {
            (bad / total).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }

    /// Burn rate: observed bad-event ratio over the tolerated ratio.
    pub fn burn_rate(observed_ratio: f64, objective: f64) -> f64 {
        if objective > 0.0 {
            observed_ratio / objective
        } else {
            0.0
        }
    }

    /// Reduces fast- and slow-window burn rates to a state string:
    /// `"burning"` (both ≥ 1), `"warn"` (either ≥ 1), `"ok"`.
    pub fn state(fast_burn: f64, slow_burn: f64) -> &'static str {
        match (fast_burn >= 1.0, slow_burn >= 1.0) {
            (true, true) => "burning",
            (false, false) => "ok",
            _ => "warn",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_window_sums_and_total() {
        let c = WindowCounter::new();
        c.add(0, 1.0);
        c.add(5, 2.0);
        c.add(9, 4.0);
        assert_eq!(c.total(), 7.0);
        // At t=9 the 10s window [0,9] holds everything.
        assert_eq!(c.window_sum(9, 10), 7.0);
        // At t=12 the 10s window [3,12] drops the t=0 add.
        assert_eq!(c.window_sum(12, 10), 6.0);
        // The 5m window still holds everything.
        assert_eq!(c.window_sum(12, 300), 7.0);
        // Far in the future every window is empty but the total stays.
        assert_eq!(c.window_sum(10_000, 300), 0.0);
        assert_eq!(c.total(), 7.0);
    }

    #[test]
    fn counter_ring_reuses_slots_after_wrap() {
        let c = WindowCounter::new();
        c.add(3, 10.0);
        // 300 slots later the same physical slot is reused; the stale
        // stamp must be discarded, not summed.
        c.add(303, 5.0);
        assert_eq!(c.window_sum(303, 10), 5.0);
        assert_eq!(c.window_sum(303, 300), 5.0, "t=3 rotated out");
        assert_eq!(c.total(), 15.0);
    }

    #[test]
    fn counter_rate_divides_by_window() {
        let c = WindowCounter::new();
        for t in 0..10 {
            c.add(t, 3.0);
        }
        assert!((c.rate_per_s(9, 10) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn gauge_keeps_last_value() {
        let g = WindowGauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(42.5);
        g.set(7.0);
        assert_eq!(g.get(), 7.0);
    }

    #[test]
    fn hist_bins_are_monotone_and_bounded() {
        let mut prev = 0;
        for us in 0..100_000u64 {
            let b = hist_bin(us);
            assert!(b >= prev, "bin index must be monotone in value");
            assert!(b < HIST_BINS);
            prev = b;
            if us >= 1 {
                let upper = hist_bin_upper_us(b);
                assert!(upper >= us as f64, "{us} above its bin edge {upper}");
                assert!(
                    upper <= us as f64 * 1.25 + 1.0,
                    "{us} bin edge {upper} too loose"
                );
            }
        }
        assert_eq!(hist_bin(u64::MAX), HIST_BINS - 1);
    }

    #[test]
    fn hist_window_quantiles_track_known_data() {
        let h = WindowHistogram::new();
        for us in 1..=100u64 {
            h.record_us(0, us * 1000);
        }
        let p50 = h.window_quantile_us(0, 10, 0.50);
        let p99 = h.window_quantile_us(0, 10, 0.99);
        assert!((50_000.0..=62_500.0).contains(&p50), "p50 {p50}");
        assert!((99_000.0..=123_750.0).contains(&p99), "p99 {p99}");
        assert_eq!(h.window_count(0, 10), 100);
        assert_eq!(h.count(), 100);
    }

    #[test]
    fn hist_window_rotation_drops_old_slots() {
        let h = WindowHistogram::new();
        h.record_us(0, 1_000); // slot idx 0
        h.record_us(30, 1_000_000); // slot idx 6
                                    // 10s window at t=30 covers slot indices 5..=6 only.
        assert_eq!(h.window_count(30, 10), 1);
        let p50 = h.window_quantile_us(30, 10, 0.50);
        assert!(p50 >= 1_000_000.0, "only the slow sample remains: {p50}");
        // The 60s window still sees both.
        assert_eq!(h.window_count(30, 60), 2);
        // Empty window far in the future.
        assert_eq!(h.window_count(10_000, 300), 0);
        assert_eq!(h.window_quantile_us(10_000, 300, 0.99), 0.0);
    }

    #[test]
    fn hist_ring_reuses_slots_after_wrap() {
        let h = WindowHistogram::new();
        h.record_us(0, 100);
        // 60 slots × 5s later the same physical slot recurs.
        h.record_us(300, 200);
        assert_eq!(h.window_count(300, 300), 1, "t=0 rotated out");
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn labels_sort_dedup_and_render() {
        let l = Labels::new()
            .with("route", "/v1/infer")
            .with("model", "a")
            .with("model", "b");
        assert_eq!(l.key(), "model=b,route=/v1/infer");
        assert_eq!(l.get("model"), Some("b"));
        assert_eq!(l.get("absent"), None);
        assert_eq!(Labels::new().key(), "");
    }

    #[test]
    fn hub_returns_same_series_for_same_labels() {
        let hub = TelemetryHub::new();
        let l = Labels::new().with("model", "m");
        let a = hub.counter("requests", &l);
        let b = hub.counter("requests", &l);
        assert!(Arc::ptr_eq(&a, &b));
        let other = hub.counter("requests", &Labels::new().with("model", "n"));
        assert!(!Arc::ptr_eq(&a, &other));
    }

    #[test]
    fn hub_caps_family_cardinality_with_overflow_series() {
        let hub = TelemetryHub::new();
        for i in 0..(MAX_SERIES_PER_FAMILY + 40) {
            let l = Labels::new().with("model", format!("m{i}"));
            hub.counter("requests", &l).add(0, 1.0);
        }
        let snap = hub.snapshot(0);
        let fam = &snap.counters[0];
        assert!(
            fam.series.len() <= MAX_SERIES_PER_FAMILY + 1,
            "cardinality must stay bounded, got {}",
            fam.series.len()
        );
        let ov = snap
            .counter("requests", &overflow_labels())
            .expect("overflow series exists");
        assert_eq!(ov.total, 40.0, "past-cap lookups collapse into overflow");
        // Past-cap lookups all alias the same physical series.
        let x = hub.counter("requests", &Labels::new().with("model", "mx"));
        let y = hub.counter("requests", &Labels::new().with("model", "my"));
        assert!(Arc::ptr_eq(&x, &y));
    }

    #[test]
    fn snapshot_reports_all_windows() {
        let hub = TelemetryHub::new();
        let l = Labels::new().with("model", "m");
        hub.counter(families::REQUESTS, &l).add(2, 5.0);
        hub.histogram(families::E2E_US, &l).record_us(2, 900);
        hub.gauge("depth", &Labels::new()).set(3.0);
        let snap = hub.snapshot(2);
        let c = snap.counter(families::REQUESTS, &l).unwrap();
        assert_eq!(c.total, 5.0);
        assert_eq!(c.windows.len(), WINDOWS_S.len());
        assert_eq!(c.windows[0].window_s, 10);
        assert_eq!(c.windows[0].sum, 5.0);
        let h = snap.histogram(families::E2E_US, &l).unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.windows[2].count, 1);
        assert!(h.windows[2].p99_us >= 900.0);
        assert_eq!(snap.gauges[0].series[0].value.value, 3.0);
    }

    #[test]
    fn slo_burn_and_state() {
        use super::slo;
        assert_eq!(slo::ratio(0.0, 0.0), 0.0);
        assert_eq!(slo::ratio(5.0, 100.0), 0.05);
        assert!((slo::burn_rate(0.05, slo::MISS_OBJECTIVE) - 5.0).abs() < 1e-12);
        assert_eq!(slo::state(0.2, 0.1), "ok");
        assert_eq!(slo::state(5.0, 0.1), "warn", "fast burn alone warns");
        assert_eq!(slo::state(0.1, 5.0), "warn", "slow burn alone warns");
        assert_eq!(slo::state(2.0, 1.5), "burning");
    }
}
