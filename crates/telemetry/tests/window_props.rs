//! Property tests for the windowed core: sliding quantiles against
//! exact nearest-rank quantiles of the same sample stream across bucket
//! rotations, and window sums against the exact filtered sum.

use proptest::prelude::*;
use snn_telemetry::{WindowCounter, WindowHistogram};

/// Mirror of the histogram's window coverage: a sample recorded at `t`
/// is inside the window `[now - w, now]` iff its 5-second slot index is
/// within the last `ceil(w/5)` slot indices ending at `now/5`.
fn hist_in_window(t: u64, now: u64, window_s: u64) -> bool {
    let span = window_s.div_ceil(5).min(60);
    t / 5 + span > now / 5
}

/// Mirror of the counter's window coverage (1-second slots).
fn counter_in_window(t: u64, now: u64, window_s: u64) -> bool {
    let span = window_s.min(300);
    t + span > now
}

fn exact_quantile(sorted: &[u64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Windowed p50/p99 must bracket the exact nearest-rank quantile of
    /// the samples the window covers: at least the exact value, at most
    /// one log-linear bin above it (≤ 25 % + 1 µs), across arbitrary
    /// slot rotations including ring wrap-around.
    #[test]
    fn windowed_quantiles_match_exact_within_bin_tolerance(
        mut samples in proptest::collection::vec((0u64..600, 1u64..2_000_000), 1..200),
        window_ix in 0usize..3,
    ) {
        let window_s = snn_telemetry::WINDOWS_S[window_ix];
        // Production time is monotone; the ring assumes it.
        samples.sort();
        let h = WindowHistogram::new();
        for &(t, us) in &samples {
            h.record_us(t, us);
        }
        let now = 600u64;
        let mut covered: Vec<u64> = samples
            .iter()
            .filter(|&&(t, _)| hist_in_window(t, now, window_s))
            .map(|&(_, us)| us)
            .collect();
        covered.sort_unstable();
        prop_assert_eq!(h.window_count(now, window_s), covered.len() as u64);
        if covered.is_empty() {
            prop_assert_eq!(h.window_quantile_us(now, window_s, 0.99), 0.0);
        } else {
            for q in [0.50, 0.99] {
                let exact = exact_quantile(&covered, q);
                let windowed = h.window_quantile_us(now, window_s, q);
                prop_assert!(
                    windowed >= exact,
                    "q{q}: windowed {windowed} below exact {exact}"
                );
                prop_assert!(
                    windowed <= exact * 1.25 + 1.0,
                    "q{q}: windowed {windowed} beyond bin tolerance of exact {exact}"
                );
            }
        }
    }

    /// Window sums must equal the exact sum over the covered samples,
    /// and the cumulative total must see everything regardless of
    /// rotation.
    #[test]
    fn windowed_sums_match_exact_filtered_sum(
        mut samples in proptest::collection::vec((0u64..600, 1u32..1000), 1..200),
        window_ix in 0usize..3,
    ) {
        let window_s = snn_telemetry::WINDOWS_S[window_ix];
        samples.sort();
        let c = WindowCounter::new();
        let mut total = 0.0f64;
        for &(t, v) in &samples {
            c.add(t, v as f64);
            total += v as f64;
        }
        let now = 600u64;
        let exact: f64 = samples
            .iter()
            .filter(|&&(t, _)| counter_in_window(t, now, window_s))
            .map(|&(_, v)| v as f64)
            .sum();
        prop_assert!((c.window_sum(now, window_s) - exact).abs() < 1e-9);
        prop_assert!((c.total() - total).abs() < 1e-9);
    }
}
