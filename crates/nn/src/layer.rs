use snn_tensor::Tensor;

use crate::layers::activation::ActivationLayer;
use crate::layers::batchnorm::BatchNorm2d;
use crate::layers::conv::Conv2dLayer;
use crate::layers::dense::DenseLayer;
use crate::layers::dropout::DropoutLayer;
use crate::layers::flatten::Flatten;
use crate::layers::pool::{AvgPool2dLayer, MaxPool2dLayer};
use crate::NnError;

/// A network layer. Modeled as an enum (rather than trait objects) so that
/// conversion and the CAT schedule can pattern-match on layer kinds without
/// downcasting.
#[derive(Debug, Clone)]
pub enum Layer {
    /// Trainable 2-D convolution.
    Conv2d(Conv2dLayer),
    /// Fully connected layer.
    Dense(DenseLayer),
    /// Inverted dropout (identity at inference; removed by conversion).
    Dropout(DropoutLayer),
    /// Batch normalization over channels.
    BatchNorm2d(BatchNorm2d),
    /// Max pooling.
    MaxPool2d(MaxPool2dLayer),
    /// Average pooling.
    AvgPool2d(AvgPool2dLayer),
    /// Flatten to `[N, rest]`.
    Flatten(Flatten),
    /// Elementwise activation with swappable function.
    Activation(ActivationLayer),
}

impl Layer {
    /// Forward pass. `train` selects batch statistics for BN layers.
    ///
    /// # Errors
    ///
    /// Propagates shape/config errors from the underlying layer.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, NnError> {
        match self {
            Layer::Conv2d(l) => l.forward(x),
            Layer::Dense(l) => l.forward(x),
            Layer::Dropout(l) => l.forward(x, train),
            Layer::BatchNorm2d(l) => l.forward(x, train),
            Layer::MaxPool2d(l) => l.forward(x),
            Layer::AvgPool2d(l) => l.forward(x),
            Layer::Flatten(l) => l.forward(x),
            Layer::Activation(l) => l.forward(x),
        }
    }

    /// Backward pass; accumulates parameter gradients where applicable.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingForward`] if `forward` has not run.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        match self {
            Layer::Conv2d(l) => l.backward(grad_out),
            Layer::Dense(l) => l.backward(grad_out),
            Layer::Dropout(l) => l.backward(grad_out),
            Layer::BatchNorm2d(l) => l.backward(grad_out),
            Layer::MaxPool2d(l) => l.backward(grad_out),
            Layer::AvgPool2d(l) => l.backward(grad_out),
            Layer::Flatten(l) => l.backward(grad_out),
            Layer::Activation(l) => l.backward(grad_out),
        }
    }

    /// Visits every `(param, grad)` pair of the layer.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        match self {
            Layer::Conv2d(l) => l.visit_params(f),
            Layer::Dense(l) => l.visit_params(f),
            Layer::BatchNorm2d(l) => l.visit_params(f),
            _ => {}
        }
    }

    /// Whether the layer carries trainable parameters.
    pub fn has_params(&self) -> bool {
        matches!(
            self,
            Layer::Conv2d(_) | Layer::Dense(_) | Layer::BatchNorm2d(_)
        )
    }

    /// Short kind name for logs.
    pub fn kind(&self) -> &'static str {
        match self {
            Layer::Conv2d(_) => "conv2d",
            Layer::Dense(_) => "dense",
            Layer::Dropout(_) => "dropout",
            Layer::BatchNorm2d(_) => "batchnorm2d",
            Layer::MaxPool2d(_) => "max_pool2d",
            Layer::AvgPool2d(_) => "avg_pool2d",
            Layer::Flatten(_) => "flatten",
            Layer::Activation(_) => "activation",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Relu;

    #[test]
    fn kinds_and_params() {
        let act = Layer::Activation(ActivationLayer::new(Box::new(Relu)));
        assert_eq!(act.kind(), "activation");
        assert!(!act.has_params());
        let bn = Layer::BatchNorm2d(BatchNorm2d::new(4));
        assert!(bn.has_params());
    }

    #[test]
    fn visit_params_counts() {
        let mut bn = Layer::BatchNorm2d(BatchNorm2d::new(4));
        let mut count = 0;
        bn.visit_params(&mut |_, _| count += 1);
        assert_eq!(count, 2); // gamma and beta

        let mut fl = Layer::Flatten(Flatten::new());
        let mut count = 0;
        fl.visit_params(&mut |_, _| count += 1);
        assert_eq!(count, 0);
    }
}
