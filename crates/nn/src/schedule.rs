/// Step learning-rate schedule: starts at `base_lr` and divides by `factor`
/// at each milestone epoch — the paper uses `0.1 ÷ 10` at epochs 80, 120
/// and 160 of a 200-epoch run.
///
/// # Example
///
/// ```
/// use snn_nn::LrSchedule;
///
/// let s = LrSchedule::step(0.1, 10.0, vec![80, 120, 160]);
/// assert_eq!(s.lr_at(0), 0.1);
/// assert_eq!(s.lr_at(80), 0.01);
/// assert!((s.lr_at(199) - 1e-4).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LrSchedule {
    base_lr: f32,
    factor: f32,
    milestones: Vec<usize>,
}

impl LrSchedule {
    /// Creates a step schedule. Milestones must be in increasing order.
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 1.0` or milestones are not strictly increasing.
    pub fn step(base_lr: f32, factor: f32, milestones: Vec<usize>) -> Self {
        assert!(factor > 1.0, "step factor must exceed 1");
        assert!(
            milestones.windows(2).all(|w| w[0] < w[1]),
            "milestones must be strictly increasing"
        );
        Self {
            base_lr,
            factor,
            milestones,
        }
    }

    /// A constant schedule (no decay).
    pub fn constant(lr: f32) -> Self {
        Self {
            base_lr: lr,
            factor: 10.0,
            milestones: Vec::new(),
        }
    }

    /// The paper's schedule scaled to `total` epochs: milestones at 40 %,
    /// 60 % and 80 % of the run, base LR 0.1, divide-by-10.
    pub fn paper_scaled(total: usize) -> Self {
        let ms = vec![total * 2 / 5, total * 3 / 5, total * 4 / 5];
        Self::step(0.1, 10.0, ms)
    }

    /// Learning rate in effect during `epoch` (0-based).
    pub fn lr_at(&self, epoch: usize) -> f32 {
        let steps = self.milestones.iter().filter(|&&m| epoch >= m).count();
        self.base_lr / self.factor.powi(steps as i32)
    }

    /// Milestone epochs.
    pub fn milestones(&self) -> &[usize] {
        &self.milestones
    }

    /// First epoch at which the learning rate is at most `threshold`
    /// (used by the CAT schedule to find where φ_TTFS becomes safe).
    pub fn first_epoch_with_lr_at_most(&self, threshold: f32) -> Option<usize> {
        // Tolerate one-ulp noise from repeated division (0.1/10³ vs 1e-4).
        let limit = threshold * (1.0 + 1e-5);
        if self.base_lr <= limit {
            return Some(0);
        }
        self.milestones
            .iter()
            .copied()
            .find(|&m| self.lr_at(m) <= limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schedule_shape() {
        let s = LrSchedule::step(0.1, 10.0, vec![80, 120, 160]);
        assert_eq!(s.lr_at(79), 0.1);
        assert!((s.lr_at(120) - 1e-3).abs() < 1e-9);
        assert!((s.lr_at(160) - 1e-4).abs() < 1e-9);
    }

    #[test]
    fn scaled_keeps_fractions() {
        let s = LrSchedule::paper_scaled(50);
        assert_eq!(s.milestones(), &[20, 30, 40]);
    }

    #[test]
    fn threshold_search_matches_paper_observation() {
        // The paper observes phi_TTFS is only stable once LR <= 1e-4,
        // i.e. after the last milestone (epoch 160 of 200).
        let s = LrSchedule::step(0.1, 10.0, vec![80, 120, 160]);
        assert_eq!(s.first_epoch_with_lr_at_most(1e-4), Some(160));
        assert_eq!(s.first_epoch_with_lr_at_most(1e-3), Some(120));
        assert_eq!(s.first_epoch_with_lr_at_most(1e-6), None);
    }

    #[test]
    fn constant_never_decays() {
        let s = LrSchedule::constant(0.05);
        assert_eq!(s.lr_at(0), s.lr_at(1000));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unordered_milestones() {
        let _ = LrSchedule::step(0.1, 10.0, vec![10, 10]);
    }
}
