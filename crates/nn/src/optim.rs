use snn_tensor::Tensor;

use crate::Sequential;

/// Stochastic gradient descent with classical momentum and decoupled L2
/// weight decay — the optimizer used by the paper (momentum 0.9, weight
/// decay 5e-4).
///
/// # Example
///
/// ```
/// use snn_nn::Sgd;
///
/// let mut opt = Sgd::new(0.1, 0.9, 5e-4);
/// opt.set_lr(0.01);
/// assert_eq!(opt.lr(), 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Self {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (driven by [`crate::LrSchedule`]).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update step to every parameter of `net` using the
    /// accumulated gradients, then leaves the gradients untouched (callers
    /// normally follow with [`Sequential::zero_grad`]).
    ///
    /// Velocity buffers are keyed by visit order, so the network structure
    /// must not change between steps.
    pub fn step(&mut self, net: &mut Sequential) {
        let mut idx = 0usize;
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        net.visit_params(&mut |p, g| {
            if velocity.len() <= idx {
                velocity.push(Tensor::zeros(p.dims()));
            }
            let v = &mut velocity[idx];
            let pv = p.as_mut_slice();
            let gv = g.as_slice();
            let vv = v.as_mut_slice();
            for i in 0..pv.len() {
                let grad = gv[i] + wd * pv[i];
                vv[i] = momentum * vv[i] + grad;
                pv[i] -= lr * vv[i];
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DenseLayer, Layer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_tensor::Tensor;

    fn one_param_net() -> Sequential {
        let mut rng = StdRng::seed_from_u64(0);
        Sequential::new(vec![Layer::Dense(DenseLayer::new(1, 1, &mut rng))])
    }

    #[test]
    fn descends_quadratic() {
        // Minimize (w*1 + b - 2)^2 via the dense layer.
        let mut net = one_param_net();
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        let x = Tensor::from_vec(vec![1.0], &[1, 1]).unwrap();
        let mut last = f32::INFINITY;
        for _ in 0..50 {
            let y = net.forward(&x, true).unwrap();
            let err = y.as_slice()[0] - 2.0;
            let g = Tensor::from_vec(vec![2.0 * err], &[1, 1]).unwrap();
            net.zero_grad();
            // re-run forward to refresh cache (zero_grad doesn't clear it but
            // backward consumes the cached input from the last forward)
            net.forward(&x, true).unwrap();
            net.backward(&g).unwrap();
            opt.step(&mut net);
            let loss = err * err;
            assert!(
                loss <= last + 1e-4,
                "loss should not increase: {loss} > {last}"
            );
            last = loss;
        }
        assert!(last < 1e-3);
    }

    #[test]
    fn momentum_accelerates() {
        let run = |momentum: f32| {
            let mut net = one_param_net();
            let mut opt = Sgd::new(0.02, momentum, 0.0);
            let x = Tensor::from_vec(vec![1.0], &[1, 1]).unwrap();
            let mut loss = 0.0;
            for _ in 0..30 {
                let y = net.forward(&x, true).unwrap();
                let err = y.as_slice()[0] - 2.0;
                loss = err * err;
                let g = Tensor::from_vec(vec![2.0 * err], &[1, 1]).unwrap();
                net.zero_grad();
                net.forward(&x, true).unwrap();
                net.backward(&g).unwrap();
                opt.step(&mut net);
            }
            loss
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut net = one_param_net();
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        let x = Tensor::from_vec(vec![0.0], &[1, 1]).unwrap();
        let before = {
            let mut norm = 0.0f32;
            net.visit_params(&mut |p, _| norm += p.as_slice().iter().map(|v| v * v).sum::<f32>());
            norm
        };
        for _ in 0..10 {
            net.zero_grad();
            net.forward(&x, true).unwrap();
            net.backward(&Tensor::zeros(&[1, 1])).unwrap();
            opt.step(&mut net);
        }
        let after = {
            let mut norm = 0.0f32;
            net.visit_params(&mut |p, _| norm += p.as_slice().iter().map(|v| v * v).sum::<f32>());
            norm
        };
        assert!(after < before);
    }
}
