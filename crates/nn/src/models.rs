//! Model zoo: the VGG-16 network the paper trains and deploys.

use rand::Rng;
use snn_tensor::Conv2dSpec;

use crate::{
    ActivationLayer, BatchNorm2d, Conv2dLayer, DenseLayer, Flatten, Layer, MaxPool2dLayer, Relu,
    Sequential,
};

/// Builds the VGG-16 network of the paper (13 conv + 3 dense layers,
/// conv-BN-ReLU blocks, 2×2 max pooling after each stage) for a square
/// RGB input of side `input_side` and `classes` outputs.
///
/// The paper trains this graph with CAT on CIFAR-10/100 (32×32) and
/// Tiny-ImageNet (64×64); its activations are later swapped to
/// φ_Clip/φ_TTFS by the CAT schedule, and the graph converts to an SNN
/// model with 16 weighted layers (Table 2 latency `T × 17`).
///
/// # Panics
///
/// Panics if `input_side` is not divisible by 32 (five 2× poolings).
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use snn_nn::models::vgg16;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = vgg16(32, 10, &mut rng);
/// // 13 conv + 13 BN + 16 act (13 conv + 2 fc hidden) ... structure check:
/// assert!(net.len() > 40);
/// ```
pub fn vgg16(input_side: usize, classes: usize, rng: &mut impl Rng) -> Sequential {
    vgg16_scaled(input_side, classes, 1, rng)
}

/// Width-scaled VGG-16: the exact layer stack of [`vgg16`] (13 conv + 3
/// dense, five 2×2-pooled stages) with every channel/feature count divided
/// by `width_div` (floored at 4). `width_div = 1` is the paper's network.
///
/// Benchmarks use this to run true VGG-16 *geometry* — depth, pooling
/// pyramid, layer kinds — at a memory/time budget that fits a CI machine:
/// MACs scale with `1 / width_div²`.
///
/// # Panics
///
/// Panics if `input_side` is not divisible by 32 (five 2× poolings) or
/// `width_div` is zero.
pub fn vgg16_scaled(
    input_side: usize,
    classes: usize,
    width_div: usize,
    rng: &mut impl Rng,
) -> Sequential {
    assert!(
        input_side.is_multiple_of(32),
        "vgg16 needs the input side divisible by 32"
    );
    assert!(width_div > 0, "width_div must be positive");
    let w = |c: usize| (c / width_div).max(4);
    let stages: &[(usize, usize)] = &[(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];
    let mut layers = Vec::new();
    let mut in_c = 3usize;
    let mut side = input_side;
    for &(out_c, convs) in stages {
        let out_c = w(out_c);
        for _ in 0..convs {
            layers.push(Layer::Conv2d(Conv2dLayer::new(
                Conv2dSpec::new(in_c, out_c, 3, 1, 1),
                rng,
            )));
            layers.push(Layer::BatchNorm2d(BatchNorm2d::new(out_c)));
            layers.push(Layer::Activation(ActivationLayer::new(Box::new(Relu))));
            in_c = out_c;
        }
        layers.push(Layer::MaxPool2d(MaxPool2dLayer::new(2, 2)));
        side /= 2;
    }
    layers.push(Layer::Flatten(Flatten::new()));
    let flat = in_c * side * side;
    let fc = w(512);
    layers.push(Layer::Dense(DenseLayer::new(flat, fc, rng)));
    layers.push(Layer::Activation(ActivationLayer::new(Box::new(Relu))));
    layers.push(Layer::Dense(DenseLayer::new(fc, fc, rng)));
    layers.push(Layer::Activation(ActivationLayer::new(Box::new(Relu))));
    layers.push(Layer::Dense(DenseLayer::new(fc, classes, rng)));
    Sequential::new(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn vgg16_structure() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = vgg16(32, 10, &mut rng);
        let weighted = net
            .layers()
            .iter()
            .filter(|l| matches!(l, Layer::Conv2d(_) | Layer::Dense(_)))
            .count();
        assert_eq!(weighted, 16, "13 conv + 3 dense");
        // ~14.7 M conv params + ~1.3 M classifier params at 32x32.
        let params = net.param_count();
        assert!(
            params > 14_000_000 && params < 17_500_000,
            "param count {params}"
        );
        // 15 hidden activations (13 conv + 2 fc).
        assert_eq!(net.activation_names().len(), 15);
    }

    #[test]
    fn vgg16_tiny_imagenet_variant() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = vgg16(64, 200, &mut rng);
        let weighted = net
            .layers()
            .iter()
            .filter(|l| matches!(l, Layer::Conv2d(_) | Layer::Dense(_)))
            .count();
        assert_eq!(weighted, 16);
    }

    #[test]
    #[should_panic(expected = "divisible by 32")]
    fn vgg16_rejects_bad_input_side() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = vgg16(20, 10, &mut rng);
    }

    #[test]
    fn vgg16_scaled_keeps_structure_and_shrinks_params() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut scaled = vgg16_scaled(32, 10, 8, &mut rng);
        let weighted = scaled
            .layers()
            .iter()
            .filter(|l| matches!(l, Layer::Conv2d(_) | Layer::Dense(_)))
            .count();
        assert_eq!(weighted, 16, "same 13 conv + 3 dense stack");
        assert!(
            scaled.param_count() < 17_500_000 / 32,
            "width/8 shrinks params >32x"
        );
        // Forward pass composes at 32x32.
        let x = snn_tensor::Tensor::zeros(&[1, 3, 32, 32]);
        let y = scaled.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[1, 10]);
    }
}
