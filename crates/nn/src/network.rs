use snn_tensor::Tensor;

use crate::{ActivationFn, Layer, NnError};

/// A feed-forward stack of [`Layer`]s.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use snn_nn::{ActivationLayer, DenseLayer, Layer, Relu, Sequential};
/// use snn_tensor::Tensor;
///
/// # fn main() -> Result<(), snn_nn::NnError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = Sequential::new(vec![
///     Layer::Dense(DenseLayer::new(4, 8, &mut rng)),
///     Layer::Activation(ActivationLayer::new(Box::new(Relu))),
///     Layer::Dense(DenseLayer::new(8, 3, &mut rng)),
/// ]);
/// let y = net.forward(&Tensor::zeros(&[2, 4]), false)?;
/// assert_eq!(y.dims(), &[2, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sequential {
    layers: Vec<Layer>,
}

impl Sequential {
    /// Creates a network from an ordered layer list.
    pub fn new(layers: Vec<Layer>) -> Self {
        Self { layers }
    }

    /// Number of layers.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Borrow of the layer list.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable borrow of the layer list (conversion & CAT hooks).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Consumes the network, returning its layers.
    pub fn into_layers(self) -> Vec<Layer> {
        self.layers
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Layer) {
        self.layers.push(layer);
    }

    /// Forward pass through all layers.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, NnError> {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, train)?;
        }
        Ok(cur)
    }

    /// Backward pass through all layers in reverse; accumulates parameter
    /// gradients.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error (e.g. a missing forward cache).
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let mut cur = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur)?;
        }
        Ok(cur)
    }

    /// Visits every `(param, grad)` pair in layer order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Sets every parameter gradient to zero (call between optimizer steps).
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| g.map_inplace(|_| 0.0));
    }

    /// Total trainable parameter count.
    pub fn param_count(&mut self) -> usize {
        let mut n = 0usize;
        self.visit_params(&mut |p, _| n += p.len());
        n
    }

    /// Replaces the function of every hidden
    /// [`ActivationLayer`](crate::ActivationLayer) using
    /// `make`, which is invoked once per activation layer with its index.
    ///
    /// This is the CAT switching hook: at each switch epoch the schedule
    /// calls this with a factory for the next activation family.
    pub fn set_activations(&mut self, make: &dyn Fn(usize) -> Box<dyn ActivationFn>) {
        let mut idx = 0usize;
        for layer in &mut self.layers {
            if let Layer::Activation(a) = layer {
                a.set_function(make(idx));
                idx += 1;
            }
        }
    }

    /// Names of the activation functions currently installed, in order.
    pub fn activation_names(&self) -> Vec<&'static str> {
        self.layers
            .iter()
            .filter_map(|l| match l {
                Layer::Activation(a) => Some(a.function_name()),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ActivationLayer, DenseLayer, Identity, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net() -> Sequential {
        let mut rng = StdRng::seed_from_u64(0);
        Sequential::new(vec![
            Layer::Dense(DenseLayer::new(2, 4, &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::Dense(DenseLayer::new(4, 2, &mut rng)),
        ])
    }

    #[test]
    fn forward_backward_roundtrip() {
        let mut net = tiny_net();
        let x = Tensor::from_vec(vec![1.0, -1.0], &[1, 2]).unwrap();
        let y = net.forward(&x, true).unwrap();
        let g = net.backward(&Tensor::full(y.dims(), 1.0)).unwrap();
        assert_eq!(g.dims(), x.dims());
    }

    #[test]
    fn zero_grad_clears() {
        let mut net = tiny_net();
        let x = Tensor::from_vec(vec![1.0, -1.0], &[1, 2]).unwrap();
        let y = net.forward(&x, true).unwrap();
        net.backward(&Tensor::full(y.dims(), 1.0)).unwrap();
        net.zero_grad();
        let mut max_grad = 0.0f32;
        net.visit_params(&mut |_, g| max_grad = max_grad.max(g.abs_max()));
        assert_eq!(max_grad, 0.0);
    }

    #[test]
    fn set_activations_swaps_all() {
        let mut net = tiny_net();
        assert_eq!(net.activation_names(), vec!["relu"]);
        net.set_activations(&|_| Box::new(Identity));
        assert_eq!(net.activation_names(), vec!["identity"]);
    }

    #[test]
    fn param_count() {
        let mut net = tiny_net();
        // 2*4 + 4 + 4*2 + 2 = 22
        assert_eq!(net.param_count(), 22);
    }
}
