use rand::seq::SliceRandom;
use rand::Rng;
use snn_tensor::Tensor;

use crate::{cross_entropy, NnError, Sequential, Sgd};

/// Mini-batch training configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Mini-batch size.
    pub batch_size: usize,
    /// Whether to shuffle sample order each epoch.
    pub shuffle: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            batch_size: 32,
            shuffle: true,
        }
    }
}

/// Loss/accuracy summary of one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochStats {
    /// Mean loss over all processed batches.
    pub loss: f32,
    /// Fraction of correctly classified samples.
    pub accuracy: f32,
}

fn gather_batch(
    images: &Tensor,
    labels: &[usize],
    idx: &[usize],
) -> Result<(Tensor, Vec<usize>), NnError> {
    let sample_len = images.len() / images.dims()[0];
    let mut dims = images.dims().to_vec();
    dims[0] = idx.len();
    let mut data = Vec::with_capacity(idx.len() * sample_len);
    let src = images.as_slice();
    let mut batch_labels = Vec::with_capacity(idx.len());
    for &s in idx {
        data.extend_from_slice(&src[s * sample_len..(s + 1) * sample_len]);
        batch_labels.push(labels[s]);
    }
    Ok((Tensor::from_vec(data, &dims)?, batch_labels))
}

/// Runs one epoch of mini-batch SGD over `(images, labels)`.
///
/// `images` is `[N, ...]` with the batch axis first; `labels` holds `N`
/// class indices.
///
/// # Errors
///
/// Returns [`NnError::Config`] if `images`/`labels` disagree, or propagates
/// layer errors.
pub fn train_epoch(
    net: &mut Sequential,
    opt: &mut Sgd,
    images: &Tensor,
    labels: &[usize],
    config: &TrainConfig,
    rng: &mut impl Rng,
) -> Result<EpochStats, NnError> {
    let n = images.dims()[0];
    if labels.len() != n {
        return Err(NnError::Config(format!(
            "{} labels for {n} images",
            labels.len()
        )));
    }
    if n == 0 {
        return Ok(EpochStats::default());
    }
    let mut order: Vec<usize> = (0..n).collect();
    if config.shuffle {
        order.shuffle(rng);
    }
    let mut total_loss = 0.0f32;
    let mut total_correct = 0usize;
    let mut batches = 0usize;
    for chunk in order.chunks(config.batch_size.max(1)) {
        let (bx, by) = gather_batch(images, labels, chunk)?;
        net.zero_grad();
        let logits = net.forward(&bx, true)?;
        let out = cross_entropy(&logits, &by)?;
        net.backward(&out.grad_logits)?;
        opt.step(net);
        total_loss += out.loss;
        total_correct += out.correct;
        batches += 1;
    }
    Ok(EpochStats {
        loss: total_loss / batches.max(1) as f32,
        accuracy: total_correct as f32 / n as f32,
    })
}

/// Computes classification accuracy of `net` on `(images, labels)` in
/// evaluation mode (running BN statistics, no gradients).
///
/// # Errors
///
/// Propagates layer errors.
pub fn evaluate(
    net: &mut Sequential,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> Result<f32, NnError> {
    let n = images.dims()[0];
    if n == 0 {
        return Ok(0.0);
    }
    let order: Vec<usize> = (0..n).collect();
    let mut correct = 0usize;
    for chunk in order.chunks(batch_size.max(1)) {
        let (bx, by) = gather_batch(images, labels, chunk)?;
        let logits = net.forward(&bx, false)?;
        let c = logits.dims()[1];
        for (s, &label) in by.iter().enumerate() {
            let row = &logits.as_slice()[s * c..(s + 1) * c];
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            if pred == label {
                correct += 1;
            }
        }
    }
    Ok(correct as f32 / n as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ActivationLayer, DenseLayer, Layer, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two linearly separable blobs in 2-D must be learnable to 100 %.
    #[test]
    fn learns_linearly_separable_blobs() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 64;
        let mut data = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2;
            let cx = if label == 0 { -1.0 } else { 1.0 };
            data.push(cx + rng.gen_range(-0.3..0.3));
            data.push(rng.gen_range(-0.3..0.3));
            labels.push(label);
        }
        let images = Tensor::from_vec(data, &[n, 2]).unwrap();

        let mut net = Sequential::new(vec![
            Layer::Dense(DenseLayer::new(2, 8, &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::Dense(DenseLayer::new(8, 2, &mut rng)),
        ]);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        let config = TrainConfig {
            batch_size: 16,
            shuffle: true,
        };
        let mut last = EpochStats::default();
        for _ in 0..30 {
            last = train_epoch(&mut net, &mut opt, &images, &labels, &config, &mut rng).unwrap();
        }
        assert!(last.accuracy > 0.95, "train accuracy {}", last.accuracy);
        let eval = evaluate(&mut net, &images, &labels, 16).unwrap();
        assert!(eval > 0.95, "eval accuracy {eval}");
    }

    #[test]
    fn rejects_mismatched_labels() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Sequential::new(vec![Layer::Dense(DenseLayer::new(2, 2, &mut rng))]);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        let images = Tensor::zeros(&[4, 2]);
        let err = train_epoch(
            &mut net,
            &mut opt,
            &images,
            &[0, 1],
            &TrainConfig::default(),
            &mut rng,
        );
        assert!(err.is_err());
    }

    #[test]
    fn empty_dataset_is_noop() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Sequential::new(vec![Layer::Dense(DenseLayer::new(2, 2, &mut rng))]);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        let images = Tensor::zeros(&[0, 2]);
        let stats = train_epoch(
            &mut net,
            &mut opt,
            &images,
            &[],
            &TrainConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(stats, EpochStats::default());
    }
}
