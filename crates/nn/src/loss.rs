use snn_tensor::Tensor;

use crate::NnError;

/// Softmax over the last axis of a `[N, classes]` tensor (numerically
/// stabilized by max subtraction).
///
/// # Errors
///
/// Returns [`NnError::Config`] if `logits` is not rank-2.
pub fn softmax(logits: &Tensor) -> Result<Tensor, NnError> {
    if logits.shape().rank() != 2 {
        return Err(NnError::Config(format!(
            "softmax expects [N, classes], got {:?}",
            logits.dims()
        )));
    }
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    let src = logits.as_slice();
    let mut out = vec![0.0f32; n * c];
    for s in 0..n {
        let row = &src[s * c..(s + 1) * c];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0f32;
        for (o, &x) in out[s * c..(s + 1) * c].iter_mut().zip(row.iter()) {
            let e = (x - m).exp();
            *o = e;
            z += e;
        }
        for o in &mut out[s * c..(s + 1) * c] {
            *o /= z;
        }
    }
    Ok(Tensor::from_vec(out, logits.dims())?)
}

/// Result of the fused softmax cross-entropy loss.
#[derive(Debug, Clone)]
pub struct CrossEntropyOutput {
    /// Mean negative log-likelihood over the batch.
    pub loss: f32,
    /// Gradient with respect to the logits, already divided by batch size.
    pub grad_logits: Tensor,
    /// Number of correct argmax predictions in the batch.
    pub correct: usize,
}

/// Fused softmax + cross-entropy with integer class labels.
///
/// # Errors
///
/// Returns [`NnError::Config`] if shapes disagree or a label is out of
/// range.
///
/// # Example
///
/// ```
/// use snn_nn::cross_entropy;
/// use snn_tensor::Tensor;
///
/// # fn main() -> Result<(), snn_nn::NnError> {
/// let logits = Tensor::from_vec(vec![5.0, 0.0, 0.0, 5.0], &[2, 2])?;
/// let out = cross_entropy(&logits, &[0, 1])?;
/// assert_eq!(out.correct, 2);
/// assert!(out.loss < 0.1);
/// # Ok(())
/// # }
/// ```
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<CrossEntropyOutput, NnError> {
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    if labels.len() != n {
        return Err(NnError::Config(format!(
            "{} labels for batch of {n}",
            labels.len()
        )));
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= c) {
        return Err(NnError::Config(format!("label {bad} out of range 0..{c}")));
    }
    let probs = softmax(logits)?;
    let p = probs.as_slice();
    let mut loss = 0.0f32;
    let mut correct = 0usize;
    let mut grad = probs.clone();
    let g = grad.as_mut_slice();
    let inv_n = 1.0 / n as f32;
    for (s, &label) in labels.iter().enumerate() {
        let row = &p[s * c..(s + 1) * c];
        loss -= row[label].max(1e-12).ln();
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        if pred == label {
            correct += 1;
        }
        g[s * c + label] -= 1.0;
    }
    for v in g.iter_mut() {
        *v *= inv_n;
    }
    Ok(CrossEntropyOutput {
        loss: loss * inv_n,
        grad_logits: grad,
        correct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let p = softmax(&logits).unwrap();
        for s in 0..2 {
            let sum: f32 = p.as_slice()[s * 3..(s + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let b = a.map(|x| x + 100.0);
        assert!(softmax(&a).unwrap().allclose(&softmax(&b).unwrap(), 1e-6));
    }

    #[test]
    fn uniform_logits_give_ln_c_loss() {
        let logits = Tensor::zeros(&[4, 10]);
        let out = cross_entropy(&logits, &[0, 1, 2, 3]).unwrap();
        assert!((out.loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn grad_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.2], &[1, 3]).unwrap();
        let out = cross_entropy(&logits, &[2]).unwrap();
        let eps = 1e-3;
        for flat in 0..3 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[flat] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[flat] -= eps;
            let num = (cross_entropy(&lp, &[2]).unwrap().loss
                - cross_entropy(&lm, &[2]).unwrap().loss)
                / (2.0 * eps);
            assert!((num - out.grad_logits.as_slice()[flat]).abs() < 1e-3);
        }
    }

    #[test]
    fn rejects_bad_labels() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(cross_entropy(&logits, &[0]).is_err());
        assert!(cross_entropy(&logits, &[0, 3]).is_err());
    }
}
