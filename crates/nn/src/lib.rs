//! From-scratch CNN training substrate for the TTFS-CAT reproduction.
//!
//! The paper trains VGG-style ANNs with stochastic gradient descent before
//! converting them to spiking networks. This crate supplies that training
//! stack: layers with manual backprop ([`Conv2dLayer`], [`DenseLayer`],
//! [`BatchNorm2d`], pooling, [`ActivationLayer`]), a [`Sequential`] container,
//! softmax cross-entropy loss, [`Sgd`] with momentum and weight decay, and a
//! step learning-rate [`LrSchedule`].
//!
//! The activation function of every [`ActivationLayer`] is a boxed
//! [`ActivationFn`] and can be *swapped during training* — this is the hook the
//! conversion-aware training (CAT) schedule in `ttfs-core` uses to move the
//! network through its `ReLU → φ_Clip → φ_TTFS` phases.
//!
//! # Example
//!
//! ```
//! use snn_nn::{ActivationLayer, DenseLayer, Layer, Relu, Sequential};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let net = Sequential::new(vec![
//!     Layer::Dense(DenseLayer::new(4, 8, &mut rng)),
//!     Layer::Activation(ActivationLayer::new(Box::new(Relu))),
//!     Layer::Dense(DenseLayer::new(8, 2, &mut rng)),
//! ]);
//! assert_eq!(net.len(), 3);
//! ```

mod activation;
mod error;
mod layer;
mod layers;
mod loss;
pub mod models;
mod network;
mod optim;
mod schedule;
mod train;

pub use activation::{ActivationFn, Identity, Relu};
pub use error::NnError;
pub use layer::Layer;
pub use layers::activation::ActivationLayer;
pub use layers::batchnorm::{BatchNorm2d, BN_EPS};
pub use layers::conv::Conv2dLayer;
pub use layers::dense::DenseLayer;
pub use layers::dropout::DropoutLayer;
pub use layers::flatten::Flatten;
pub use layers::pool::{AvgPool2dLayer, MaxPool2dLayer};
pub use loss::{cross_entropy, softmax, CrossEntropyOutput};
pub use network::Sequential;
pub use optim::Sgd;
pub use schedule::LrSchedule;
pub use train::{evaluate, train_epoch, EpochStats, TrainConfig};
