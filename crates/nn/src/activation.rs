use std::fmt;

/// A scalar activation function with a (possibly surrogate) derivative.
///
/// Implementations must be pure: `value` and `derivative` may be called in
/// any order and must depend only on `x`. The derivative is evaluated at the
/// *pre-activation* input, which is what the backward pass of
/// [`crate::ActivationLayer`] supplies.
///
/// The conversion-aware training activations of the paper (φ_Clip, φ_TTFS)
/// implement this trait in `ttfs-core`; this crate ships only the generic
/// [`Relu`] and [`Identity`].
///
/// # Example
///
/// ```
/// use snn_nn::{ActivationFn, Relu};
///
/// assert_eq!(Relu.value(-1.0), 0.0);
/// assert_eq!(Relu.value(2.5), 2.5);
/// assert_eq!(Relu.derivative(2.5), 1.0);
/// ```
pub trait ActivationFn: fmt::Debug + Send + Sync {
    /// Forward value `f(x)`.
    fn value(&self, x: f32) -> f32;

    /// Derivative `df/dx` at `x` (surrogate/straight-through allowed).
    fn derivative(&self, x: f32) -> f32;

    /// Short name used in training logs (e.g. `"relu"`, `"clip"`, `"ttfs"`).
    fn name(&self) -> &'static str;

    /// Clones the activation into a box (object-safe clone).
    fn boxed_clone(&self) -> Box<dyn ActivationFn>;
}

impl Clone for Box<dyn ActivationFn> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// Rectified linear unit, used during the initial CAT phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Relu;

impl ActivationFn for Relu {
    fn value(&self, x: f32) -> f32 {
        x.max(0.0)
    }

    fn derivative(&self, x: f32) -> f32 {
        if x > 0.0 {
            1.0
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "relu"
    }

    fn boxed_clone(&self) -> Box<dyn ActivationFn> {
        Box::new(*self)
    }
}

/// Identity activation (used by the output layer, which the paper leaves
/// activation-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Identity;

impl ActivationFn for Identity {
    fn value(&self, x: f32) -> f32 {
        x
    }

    fn derivative(&self, _x: f32) -> f32 {
        1.0
    }

    fn name(&self) -> &'static str {
        "identity"
    }

    fn boxed_clone(&self) -> Box<dyn ActivationFn> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Relu.value(-3.0), 0.0);
        assert_eq!(Relu.derivative(-3.0), 0.0);
        assert_eq!(Relu.value(0.5), 0.5);
    }

    #[test]
    fn identity_passes_through() {
        assert_eq!(Identity.value(-3.0), -3.0);
        assert_eq!(Identity.derivative(123.0), 1.0);
    }

    #[test]
    fn boxed_clone_preserves_behaviour() {
        let b: Box<dyn ActivationFn> = Box::new(Relu);
        let c = b.clone();
        assert_eq!(c.value(-1.0), 0.0);
        assert_eq!(c.name(), "relu");
    }
}
