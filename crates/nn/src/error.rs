use std::error::Error;
use std::fmt;

use snn_tensor::ShapeError;

/// Errors raised by the neural-network substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// A tensor operation rejected its operand shapes.
    Shape(ShapeError),
    /// `backward` was called before `forward` populated the layer cache.
    MissingForward(&'static str),
    /// The network or configuration is structurally invalid.
    Config(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Shape(e) => write!(f, "{e}"),
            NnError::MissingForward(layer) => {
                write!(f, "backward called before forward on {layer} layer")
            }
            NnError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ShapeError> for NnError {
    fn from(e: ShapeError) -> Self {
        NnError::Shape(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_each_variant() {
        assert!(NnError::MissingForward("conv").to_string().contains("conv"));
        assert!(NnError::Config("bad".into()).to_string().contains("bad"));
        let s = NnError::from(ShapeError::new("zip", "a vs b")).to_string();
        assert!(s.contains("zip"));
    }
}
