use snn_tensor::Tensor;

use crate::NnError;

/// Numerical-stability epsilon used in the variance denominator.
pub const BN_EPS: f32 = 1e-5;

/// Batch normalization over the channel axis of NCHW tensors.
///
/// Training mode normalizes with batch statistics and maintains running
/// estimates (momentum 0.1, PyTorch convention); evaluation mode uses the
/// running estimates. During ANN→SNN conversion the affine+running
/// parameters are *fused* into the preceding convolution (see
/// `ttfs-core::convert`), which is why they are exposed read-only here.
///
/// # Example
///
/// ```
/// use snn_nn::BatchNorm2d;
/// use snn_tensor::Tensor;
///
/// # fn main() -> Result<(), snn_nn::NnError> {
/// let mut bn = BatchNorm2d::new(3);
/// let x = Tensor::zeros(&[2, 3, 4, 4]);
/// let y = bn.forward(&x, true)?;
/// assert_eq!(y.dims(), x.dims());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
}

impl BatchNorm2d {
    /// Creates a BN layer for `channels` feature maps (γ=1, β=0).
    pub fn new(channels: usize) -> Self {
        Self {
            gamma: Tensor::full(&[channels], 1.0),
            beta: Tensor::zeros(&[channels]),
            grad_gamma: Tensor::zeros(&[channels]),
            grad_beta: Tensor::zeros(&[channels]),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::full(&[channels], 1.0),
            momentum: 0.1,
            cache: None,
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.gamma.len()
    }

    /// Scale parameter γ.
    pub fn gamma(&self) -> &Tensor {
        &self.gamma
    }

    /// Shift parameter β.
    pub fn beta(&self) -> &Tensor {
        &self.beta
    }

    /// Running mean estimate (inference statistics).
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Running variance estimate (inference statistics).
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }

    /// Overrides the inference statistics (used in tests and conversion).
    pub fn set_running_stats(&mut self, mean: Tensor, var: Tensor) -> Result<(), NnError> {
        if mean.dims() != self.gamma.dims() || var.dims() != self.gamma.dims() {
            return Err(NnError::Config(format!(
                "running stats {:?}/{:?} vs {} channels",
                mean.dims(),
                var.dims(),
                self.channels()
            )));
        }
        self.running_mean = mean;
        self.running_var = var;
        Ok(())
    }

    /// Forward pass; `train` selects batch vs running statistics.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `x` is not NCHW with matching channels.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, NnError> {
        let d = x.dims();
        if d.len() != 4 || d[1] != self.channels() {
            return Err(NnError::Config(format!(
                "batchnorm input {:?} vs {} channels",
                d,
                self.channels()
            )));
        }
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        let plane = h * w;
        let m = (n * plane) as f32;
        let src = x.as_slice();

        let mut out = vec![0.0f32; src.len()];
        let mut x_hat = vec![0.0f32; src.len()];
        let mut inv_std = vec![0.0f32; c];

        for ci in 0..c {
            let (mean, var) = if train {
                let mut mean = 0.0f32;
                for s in 0..n {
                    let base = (s * c + ci) * plane;
                    mean += src[base..base + plane].iter().sum::<f32>();
                }
                mean /= m;
                let mut var = 0.0f32;
                for s in 0..n {
                    let base = (s * c + ci) * plane;
                    var += src[base..base + plane]
                        .iter()
                        .map(|&v| (v - mean) * (v - mean))
                        .sum::<f32>();
                }
                var /= m;
                let rm = self.running_mean.as_mut_slice();
                rm[ci] = (1.0 - self.momentum) * rm[ci] + self.momentum * mean;
                // Unbiased variance in running estimate, PyTorch convention.
                let unbiased = if m > 1.0 { var * m / (m - 1.0) } else { var };
                let rv = self.running_var.as_mut_slice();
                rv[ci] = (1.0 - self.momentum) * rv[ci] + self.momentum * unbiased;
                (mean, var)
            } else {
                (
                    self.running_mean.as_slice()[ci],
                    self.running_var.as_slice()[ci],
                )
            };
            let istd = 1.0 / (var + BN_EPS).sqrt();
            inv_std[ci] = istd;
            let g = self.gamma.as_slice()[ci];
            let b = self.beta.as_slice()[ci];
            for s in 0..n {
                let base = (s * c + ci) * plane;
                for i in 0..plane {
                    let xh = (src[base + i] - mean) * istd;
                    x_hat[base + i] = xh;
                    out[base + i] = g * xh + b;
                }
            }
        }

        if train {
            self.cache = Some(BnCache {
                x_hat: Tensor::from_vec(x_hat, d)?,
                inv_std,
            });
        }
        Ok(Tensor::from_vec(out, d)?)
    }

    /// Backward pass (training statistics); accumulates γ/β gradients and
    /// returns `dL/dx`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingForward`] if called before a training-mode
    /// `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let cache = self
            .cache
            .as_ref()
            .ok_or(NnError::MissingForward("batchnorm"))?;
        let d = grad_out.dims();
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        let plane = h * w;
        let m = (n * plane) as f32;
        let g = grad_out.as_slice();
        let xh = cache.x_hat.as_slice();
        let mut gin = vec![0.0f32; g.len()];

        for ci in 0..c {
            let mut sum_g = 0.0f32;
            let mut sum_gx = 0.0f32;
            for s in 0..n {
                let base = (s * c + ci) * plane;
                for i in 0..plane {
                    sum_g += g[base + i];
                    sum_gx += g[base + i] * xh[base + i];
                }
            }
            self.grad_beta.as_mut_slice()[ci] += sum_g;
            self.grad_gamma.as_mut_slice()[ci] += sum_gx;

            let gamma = self.gamma.as_slice()[ci];
            let istd = cache.inv_std[ci];
            let mean_g = sum_g / m;
            let mean_gx = sum_gx / m;
            for s in 0..n {
                let base = (s * c + ci) * plane;
                for i in 0..plane {
                    gin[base + i] = gamma * istd * (g[base + i] - mean_g - xh[base + i] * mean_gx);
                }
            }
        }
        Ok(Tensor::from_vec(gin, d)?)
    }

    /// Visits `(param, grad)` pairs: γ then β.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.gamma, &mut self.grad_gamma);
        f(&mut self.beta, &mut self.grad_beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tensor {
        Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, // c0 of sample 0
                10.0, 20.0, 30.0, 40.0, // c1 of sample 0
                -1.0, -2.0, -3.0, -4.0, // c0 of sample 1
                -10.0, -20.0, -30.0, -40.0, // c1 of sample 1
            ],
            &[2, 2, 2, 2],
        )
        .unwrap()
    }

    #[test]
    fn train_output_is_normalized() {
        let mut bn = BatchNorm2d::new(2);
        let y = bn.forward(&sample(), true).unwrap();
        // Per-channel mean should be ~0 and variance ~1 after normalization.
        for ci in 0..2 {
            let mut vals = Vec::new();
            for s in 0..2 {
                for i in 0..4 {
                    vals.push(y.as_slice()[(s * 2 + ci) * 4 + i]);
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        bn.set_running_stats(Tensor::from_slice(&[2.0]), Tensor::from_slice(&[4.0]))
            .unwrap();
        let x = Tensor::from_vec(vec![4.0], &[1, 1, 1, 1]).unwrap();
        let y = bn.forward(&x, false).unwrap();
        // (4 - 2) / sqrt(4 + eps) ~ 1.0
        assert!((y.as_slice()[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn backward_gradient_sums_to_zero_per_channel() {
        // BN's dx has zero mean per channel when gamma is constant — a known
        // analytic property we can verify directly.
        let mut bn = BatchNorm2d::new(2);
        let x = sample();
        bn.forward(&x, true).unwrap();
        let g = Tensor::from_vec((0..16).map(|i| i as f32 * 0.1).collect(), &[2, 2, 2, 2]).unwrap();
        let gin = bn.backward(&g).unwrap();
        for ci in 0..2 {
            let mut sum = 0.0f32;
            for s in 0..2 {
                for i in 0..4 {
                    sum += gin.as_slice()[(s * 2 + ci) * 4 + i];
                }
            }
            assert!(sum.abs() < 1e-4, "channel {ci} grad sum {sum}");
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1], &[2, 1, 1, 2]).unwrap();
        // Loss: sum of BN output times fixed weights.
        let wv = [1.0f32, -2.0, 0.5, 3.0];
        let y = bn.forward(&x, true).unwrap();
        let g = Tensor::from_vec(wv.to_vec(), y.dims()).unwrap();
        let gin = bn.backward(&g).unwrap();

        let eps = 1e-3;
        for flat in 0..4 {
            let loss = |x: &Tensor| {
                let mut bn2 = BatchNorm2d::new(1);
                let y = bn2.forward(x, true).unwrap();
                y.as_slice()
                    .iter()
                    .zip(wv.iter())
                    .map(|(a, b)| a * b)
                    .sum::<f32>()
            };
            let mut xp = x.clone();
            xp.as_mut_slice()[flat] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[flat] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (num - gin.as_slice()[flat]).abs() < 2e-2,
                "at {flat}: numeric {num} vs analytic {}",
                gin.as_slice()[flat]
            );
        }
    }

    #[test]
    fn set_running_stats_validates_shape() {
        let mut bn = BatchNorm2d::new(2);
        assert!(bn
            .set_running_stats(Tensor::zeros(&[3]), Tensor::zeros(&[2]))
            .is_err());
    }
}
