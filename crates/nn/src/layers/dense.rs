use rand::Rng;
use snn_tensor::{gemm, kaiming_normal, Tensor, Transpose};

use crate::NnError;

/// Fully connected layer `y = x Wᵀ + b` with weight `[out, in]`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use snn_nn::DenseLayer;
/// use snn_tensor::Tensor;
///
/// # fn main() -> Result<(), snn_nn::NnError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut layer = DenseLayer::new(3, 2, &mut rng);
/// let x = Tensor::zeros(&[4, 3]);
/// let y = layer.forward(&x)?;
/// assert_eq!(y.dims(), &[4, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DenseLayer {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl DenseLayer {
    /// Creates a dense layer with Kaiming-normal weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        Self {
            weight: kaiming_normal(&[out_features, in_features], in_features, rng),
            bias: Tensor::zeros(&[out_features]),
            grad_weight: Tensor::zeros(&[out_features, in_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            cached_input: None,
        }
    }

    /// Builds a layer from explicit parameters (used by conversion code).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] if `weight` is not rank-2 or `bias` length
    /// differs from the output features.
    pub fn from_params(weight: Tensor, bias: Tensor) -> Result<Self, NnError> {
        if weight.shape().rank() != 2 {
            return Err(NnError::Config(format!(
                "dense weight must be rank-2, got {:?}",
                weight.dims()
            )));
        }
        if bias.dims() != [weight.dims()[0]] {
            return Err(NnError::Config(format!(
                "dense bias {:?} vs out features {}",
                bias.dims(),
                weight.dims()[0]
            )));
        }
        let gw = Tensor::zeros(weight.dims());
        let gb = Tensor::zeros(bias.dims());
        Ok(Self {
            weight,
            bias,
            grad_weight: gw,
            grad_bias: gb,
            cached_input: None,
        })
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.dims()[1]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.dims()[0]
    }

    /// Borrow of the weight matrix `[out, in]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Mutable borrow of the weight matrix (used by conversion/quantization).
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight
    }

    /// Borrow of the bias vector `[out]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Mutable borrow of the bias vector.
    pub fn bias_mut(&mut self) -> &mut Tensor {
        &mut self.bias
    }

    /// Forward pass for input `[N, in]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] on input shape mismatch.
    pub fn forward(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        let y = gemm(x, Transpose::No, &self.weight, Transpose::Yes)?;
        let n = y.dims()[0];
        let out = self.out_features();
        let mut y = y;
        let data = y.as_mut_slice();
        for s in 0..n {
            for (o, &b) in self.bias.as_slice().iter().enumerate() {
                data[s * out + o] += b;
            }
        }
        self.cached_input = Some(x.clone());
        Ok(y)
    }

    /// Backward pass; accumulates parameter gradients and returns `dL/dx`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingForward`] if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or(NnError::MissingForward("dense"))?;
        // dW = g^T x ; db = sum_n g ; dx = g W
        let gw = gemm(grad_out, Transpose::Yes, x, Transpose::No)?;
        self.grad_weight.axpy(1.0, &gw)?;
        let (n, out) = (grad_out.dims()[0], grad_out.dims()[1]);
        for s in 0..n {
            for o in 0..out {
                self.grad_bias.as_mut_slice()[o] += grad_out.as_slice()[s * out + o];
            }
        }
        Ok(gemm(grad_out, Transpose::No, &self.weight, Transpose::No)?)
    }

    /// Visits `(param, grad)` pairs, weight first.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.weight, &mut self.grad_weight);
        f(&mut self.bias, &mut self.grad_bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_affine() {
        let weight = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let bias = Tensor::from_slice(&[10.0, 20.0]);
        let mut layer = DenseLayer::from_params(weight, bias).unwrap();
        let x = Tensor::from_vec(vec![1.0, 0.0, -1.0], &[1, 3]).unwrap();
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[1.0 - 3.0 + 10.0, 4.0 - 6.0 + 20.0]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = DenseLayer::new(3, 2, &mut rng);
        let g = Tensor::zeros(&[1, 2]);
        assert_eq!(layer.backward(&g), Err(NnError::MissingForward("dense")));
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = DenseLayer::new(4, 3, &mut rng);
        let x = kaiming_normal(&[2, 4], 4, &mut rng);
        let y = layer.forward(&x).unwrap();
        let g = Tensor::full(y.dims(), 1.0);
        let gx = layer.backward(&g).unwrap();

        let eps = 1e-3;
        for &flat in &[0usize, 3, 7] {
            let mut xp = x.clone();
            xp.as_mut_slice()[flat] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[flat] -= eps;
            let lp = layer.forward(&xp).unwrap().sum();
            let lm = layer.forward(&xm).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - gx.as_slice()[flat]).abs() < 1e-2);
        }
    }

    #[test]
    fn from_params_validates() {
        assert!(DenseLayer::from_params(Tensor::zeros(&[2, 3, 1]), Tensor::zeros(&[2])).is_err());
        assert!(DenseLayer::from_params(Tensor::zeros(&[2, 3]), Tensor::zeros(&[3])).is_err());
    }
}
