pub mod activation;
pub mod batchnorm;
pub mod conv;
pub mod dense;
pub mod dropout;
pub mod flatten;
pub mod pool;
