use snn_tensor::{
    avg_pool2d, avg_pool2d_backward, max_pool2d, max_pool2d_backward, Pool2dSpec, Tensor,
};

use crate::NnError;

/// Max-pooling layer (VGG uses 2×2/stride-2).
#[derive(Debug, Clone)]
pub struct MaxPool2dLayer {
    spec: Pool2dSpec,
    cache: Option<(Vec<usize>, Vec<usize>)>, // (argmax, input dims)
}

impl MaxPool2dLayer {
    /// Creates a max-pooling layer.
    pub fn new(window: usize, stride: usize) -> Self {
        Self {
            spec: Pool2dSpec::new(window, stride),
            cache: None,
        }
    }

    /// The pooling geometry.
    pub fn spec(&self) -> &Pool2dSpec {
        &self.spec
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `x` is not rank-4.
    pub fn forward(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        let (y, arg) = max_pool2d(x, &self.spec)?;
        self.cache = Some((arg, x.dims().to_vec()));
        Ok(y)
    }

    /// Backward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingForward`] if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let (arg, dims) = self
            .cache
            .as_ref()
            .ok_or(NnError::MissingForward("max_pool2d"))?;
        Ok(max_pool2d_backward(grad_out, arg, dims)?)
    }
}

/// Average-pooling layer.
#[derive(Debug, Clone)]
pub struct AvgPool2dLayer {
    spec: Pool2dSpec,
    input_dims: Option<Vec<usize>>,
}

impl AvgPool2dLayer {
    /// Creates an average-pooling layer.
    pub fn new(window: usize, stride: usize) -> Self {
        Self {
            spec: Pool2dSpec::new(window, stride),
            input_dims: None,
        }
    }

    /// The pooling geometry.
    pub fn spec(&self) -> &Pool2dSpec {
        &self.spec
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `x` is not rank-4.
    pub fn forward(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        self.input_dims = Some(x.dims().to_vec());
        Ok(avg_pool2d(x, &self.spec)?)
    }

    /// Backward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingForward`] if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let dims = self
            .input_dims
            .as_ref()
            .ok_or(NnError::MissingForward("avg_pool2d"))?;
        Ok(avg_pool2d_backward(grad_out, &self.spec, dims)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_roundtrip() {
        let mut layer = MaxPool2dLayer::new(2, 2);
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        let gin = layer.backward(&Tensor::full(&[1, 1, 2, 2], 1.0)).unwrap();
        assert_eq!(gin.sum(), 4.0);
    }

    #[test]
    fn avg_pool_roundtrip() {
        let mut layer = AvgPool2dLayer::new(2, 2);
        let x = Tensor::full(&[1, 1, 4, 4], 2.0);
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
        let gin = layer.backward(&Tensor::full(&[1, 1, 2, 2], 4.0)).unwrap();
        assert_eq!(gin.as_slice(), &[1.0f32; 16] as &[f32]);
    }

    #[test]
    fn backward_requires_forward() {
        let mut layer = MaxPool2dLayer::new(2, 2);
        assert!(layer.backward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
    }
}
