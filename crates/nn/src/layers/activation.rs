use snn_tensor::Tensor;

use crate::{ActivationFn, NnError};

/// Elementwise activation layer whose function can be swapped mid-training.
///
/// This is the mechanism behind conversion-aware training: the CAT schedule
/// replaces every activation layer's function at its switch epochs
/// (`ReLU → φ_Clip → φ_TTFS`) via [`ActivationLayer::set_function`].
///
/// # Example
///
/// ```
/// use snn_nn::{ActivationLayer, Identity, Relu};
/// use snn_tensor::Tensor;
///
/// # fn main() -> Result<(), snn_nn::NnError> {
/// let mut layer = ActivationLayer::new(Box::new(Relu));
/// let y = layer.forward(&Tensor::from_slice(&[-1.0, 2.0]))?;
/// assert_eq!(y.as_slice(), &[0.0, 2.0]);
/// layer.set_function(Box::new(Identity));
/// assert_eq!(layer.function_name(), "identity");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ActivationLayer {
    f: Box<dyn ActivationFn>,
    cached_input: Option<Tensor>,
}

impl ActivationLayer {
    /// Creates an activation layer.
    pub fn new(f: Box<dyn ActivationFn>) -> Self {
        Self {
            f,
            cached_input: None,
        }
    }

    /// Replaces the activation function (CAT switch hook).
    pub fn set_function(&mut self, f: Box<dyn ActivationFn>) {
        self.f = f;
    }

    /// Name of the current activation function.
    pub fn function_name(&self) -> &'static str {
        self.f.name()
    }

    /// Borrow of the current activation function.
    pub fn function(&self) -> &dyn ActivationFn {
        self.f.as_ref()
    }

    /// Forward pass, any shape.
    ///
    /// # Errors
    ///
    /// This method currently cannot fail but returns `Result` for interface
    /// uniformity with the other layers.
    pub fn forward(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        self.cached_input = Some(x.clone());
        Ok(x.map(|v| self.f.value(v)))
    }

    /// Backward pass: `dL/dx = dL/dy · f'(x)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingForward`] if called before `forward`, or
    /// [`NnError::Shape`] if the gradient shape differs from the input.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or(NnError::MissingForward("activation"))?;
        Ok(grad_out.zip(x, |g, xv| g * self.f.derivative(xv))?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Relu;

    #[test]
    fn relu_forward_backward() {
        let mut layer = ActivationLayer::new(Box::new(Relu));
        let x = Tensor::from_slice(&[-2.0, 3.0]);
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 3.0]);
        let g = layer.backward(&Tensor::from_slice(&[1.0, 1.0])).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn swap_function_changes_behaviour() {
        use crate::Identity;
        let mut layer = ActivationLayer::new(Box::new(Relu));
        layer.set_function(Box::new(Identity));
        let y = layer.forward(&Tensor::from_slice(&[-2.0])).unwrap();
        assert_eq!(y.as_slice(), &[-2.0]);
    }

    #[test]
    fn backward_requires_forward() {
        let mut layer = ActivationLayer::new(Box::new(Relu));
        assert!(layer.backward(&Tensor::from_slice(&[1.0])).is_err());
    }
}
