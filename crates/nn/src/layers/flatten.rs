use snn_tensor::Tensor;

use crate::NnError;

/// Flattens `[N, C, H, W]` (or any rank ≥ 2) to `[N, rest]`.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] if `x` is rank-0 or rank-1 (no batch axis).
    pub fn forward(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        if x.shape().rank() < 2 {
            return Err(NnError::Config(format!(
                "flatten needs a batch axis, got shape {:?}",
                x.dims()
            )));
        }
        self.input_dims = Some(x.dims().to_vec());
        let n = x.dims()[0];
        let rest = x.len() / n.max(1);
        Ok(x.reshape(&[n, rest])?)
    }

    /// Backward pass: reshapes the gradient back to the cached input dims.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingForward`] if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let dims = self
            .input_dims
            .as_ref()
            .ok_or(NnError::MissingForward("flatten"))?;
        Ok(grad_out.reshape(dims)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 4]);
        let y = f.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 48]);
        let g = f.backward(&Tensor::zeros(&[2, 48])).unwrap();
        assert_eq!(g.dims(), &[2, 3, 4, 4]);
    }

    #[test]
    fn rejects_vectors() {
        let mut f = Flatten::new();
        assert!(f.forward(&Tensor::zeros(&[5])).is_err());
    }
}
