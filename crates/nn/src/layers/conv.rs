use rand::Rng;
use snn_tensor::{
    conv2d, conv2d_backward_input, conv2d_backward_weight, kaiming_normal, Conv2dSpec, Tensor,
};

use crate::NnError;

/// Trainable 2-D convolution layer (NCHW).
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use snn_nn::Conv2dLayer;
/// use snn_tensor::{Conv2dSpec, Tensor};
///
/// # fn main() -> Result<(), snn_nn::NnError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut layer = Conv2dLayer::new(Conv2dSpec::new(3, 8, 3, 1, 1), &mut rng);
/// let y = layer.forward(&Tensor::zeros(&[1, 3, 8, 8]))?;
/// assert_eq!(y.dims(), &[1, 8, 8, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Conv2dLayer {
    spec: Conv2dSpec,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Conv2dLayer {
    /// Creates a convolution layer with Kaiming-normal weights, zero bias.
    pub fn new(spec: Conv2dSpec, rng: &mut impl Rng) -> Self {
        let fan_in = spec.col_rows();
        let dims = [
            spec.out_channels,
            spec.in_channels,
            spec.kernel,
            spec.kernel,
        ];
        Self {
            spec,
            weight: kaiming_normal(&dims, fan_in, rng),
            bias: Tensor::zeros(&[spec.out_channels]),
            grad_weight: Tensor::zeros(&dims),
            grad_bias: Tensor::zeros(&[spec.out_channels]),
            cached_input: None,
        }
    }

    /// Builds a layer from explicit parameters (used by BN fusion).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] if parameter shapes disagree with `spec`.
    pub fn from_params(spec: Conv2dSpec, weight: Tensor, bias: Tensor) -> Result<Self, NnError> {
        let expect = [
            spec.out_channels,
            spec.in_channels,
            spec.kernel,
            spec.kernel,
        ];
        if weight.dims() != expect {
            return Err(NnError::Config(format!(
                "conv weight {:?} vs spec {:?}",
                weight.dims(),
                expect
            )));
        }
        if bias.dims() != [spec.out_channels] {
            return Err(NnError::Config(format!(
                "conv bias {:?} vs out channels {}",
                bias.dims(),
                spec.out_channels
            )));
        }
        let gw = Tensor::zeros(weight.dims());
        let gb = Tensor::zeros(bias.dims());
        Ok(Self {
            spec,
            weight,
            bias,
            grad_weight: gw,
            grad_bias: gb,
            cached_input: None,
        })
    }

    /// The convolution geometry.
    pub fn spec(&self) -> &Conv2dSpec {
        &self.spec
    }

    /// Borrow of the weight `[out_c, in_c, k, k]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Mutable borrow of the weight (conversion/quantization hook).
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight
    }

    /// Borrow of the bias `[out_c]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Mutable borrow of the bias.
    pub fn bias_mut(&mut self) -> &mut Tensor {
        &mut self.bias
    }

    /// Forward pass for input `[N, C, H, W]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] on operand mismatch.
    pub fn forward(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        let y = conv2d(x, &self.weight, Some(&self.bias), &self.spec)?;
        self.cached_input = Some(x.clone());
        Ok(y)
    }

    /// Backward pass; accumulates parameter gradients and returns `dL/dx`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingForward`] if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or(NnError::MissingForward("conv2d"))?;
        let (gw, gb) = conv2d_backward_weight(x, grad_out, &self.spec)?;
        self.grad_weight.axpy(1.0, &gw)?;
        self.grad_bias.axpy(1.0, &gb)?;
        let hw = (x.dims()[2], x.dims()[3]);
        Ok(conv2d_backward_input(
            grad_out,
            &self.weight,
            &self.spec,
            hw,
        )?)
    }

    /// Visits `(param, grad)` pairs, weight first.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.weight, &mut self.grad_weight);
        f(&mut self.bias, &mut self.grad_bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Conv2dLayer::new(Conv2dSpec::new(2, 4, 3, 1, 1), &mut rng);
        let y = layer.forward(&Tensor::zeros(&[2, 2, 6, 6])).unwrap();
        assert_eq!(y.dims(), &[2, 4, 6, 6]);
    }

    #[test]
    fn weight_gradient_finite_difference() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Conv2dLayer::new(Conv2dSpec::new(1, 2, 3, 1, 1), &mut rng);
        let x = kaiming_normal(&[1, 1, 4, 4], 9, &mut rng);
        let y = layer.forward(&x).unwrap();
        layer.backward(&Tensor::full(y.dims(), 1.0)).unwrap();

        let eps = 1e-3;
        for &flat in &[0usize, 8, 17] {
            let mut lp = layer.clone();
            lp.weight_mut().as_mut_slice()[flat] += eps;
            let mut lm = layer.clone();
            lm.weight_mut().as_mut_slice()[flat] -= eps;
            let num = (lp.forward(&x).unwrap().sum() - lm.forward(&x).unwrap().sum()) / (2.0 * eps);
            assert!(
                (num - layer.grad_weight.as_slice()[flat]).abs() < 1e-2,
                "at {flat}"
            );
        }
    }

    #[test]
    fn from_params_validates_shapes() {
        let spec = Conv2dSpec::new(1, 2, 3, 1, 1);
        assert!(
            Conv2dLayer::from_params(spec, Tensor::zeros(&[2, 1, 3, 3]), Tensor::zeros(&[2]))
                .is_ok()
        );
        assert!(
            Conv2dLayer::from_params(spec, Tensor::zeros(&[2, 2, 3, 3]), Tensor::zeros(&[2]))
                .is_err()
        );
    }
}
