use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snn_tensor::Tensor;

use crate::NnError;

/// Inverted dropout: during training each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1−p)`; evaluation is the
/// identity. VGG-16's classifier stages traditionally use `p = 0.5`.
///
/// The layer owns a seeded RNG so training runs stay reproducible without
/// threading an RNG through the `Layer` API.
///
/// # Example
///
/// ```
/// use snn_nn::DropoutLayer;
/// use snn_tensor::Tensor;
///
/// # fn main() -> Result<(), snn_nn::NnError> {
/// let mut layer = DropoutLayer::new(0.5, 42);
/// let x = Tensor::full(&[4, 8], 1.0);
/// let eval = layer.forward(&x, false)?; // identity in eval mode
/// assert_eq!(eval.as_slice(), x.as_slice());
/// let train = layer.forward(&x, true)?; // zeros and 2.0-scaled survivors
/// assert!(train.as_slice().iter().all(|&v| v == 0.0 || v == 2.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DropoutLayer {
    p: f32,
    rng: StdRng,
    mask: Option<Tensor>,
}

impl DropoutLayer {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1)"
        );
        Self {
            p,
            rng: StdRng::seed_from_u64(seed),
            mask: None,
        }
    }

    /// Drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }

    /// Forward pass; identity when `train` is false.
    ///
    /// # Errors
    ///
    /// This method cannot currently fail; `Result` keeps the layer API
    /// uniform.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if !train || self.p == 0.0 {
            self.mask = None;
            return Ok(x.clone());
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask_data: Vec<f32> = (0..x.len())
            .map(|_| {
                if self.rng.gen::<f32>() < keep {
                    scale
                } else {
                    0.0
                }
            })
            .collect();
        let mask = Tensor::from_vec(mask_data, x.dims())?;
        let y = x.mul(&mask)?;
        self.mask = Some(mask);
        Ok(y)
    }

    /// Backward pass: gradients flow only through kept elements, with the
    /// same scale.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingForward`] if called before a training-mode
    /// `forward` (eval-mode forwards clear the mask and make backward the
    /// identity).
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        match &self.mask {
            Some(mask) => Ok(grad_out.mul(mask)?),
            None => Ok(grad_out.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut d = DropoutLayer::new(0.5, 0);
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(d.forward(&x, false).unwrap(), x);
    }

    #[test]
    fn train_preserves_expectation() {
        let mut d = DropoutLayer::new(0.5, 1);
        let x = Tensor::full(&[1, 10_000], 1.0);
        let y = d.forward(&x, true).unwrap();
        let mean = y.mean();
        assert!(
            (mean - 1.0).abs() < 0.05,
            "inverted dropout keeps E[x]: {mean}"
        );
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = DropoutLayer::new(0.5, 2);
        let x = Tensor::full(&[1, 64], 1.0);
        let y = d.forward(&x, true).unwrap();
        let g = d.backward(&Tensor::full(&[1, 64], 1.0)).unwrap();
        // Gradient flows exactly where the forward survived.
        for (yv, gv) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(yv == &0.0, gv == &0.0);
        }
    }

    #[test]
    fn zero_p_is_identity_even_in_train() {
        let mut d = DropoutLayer::new(0.0, 3);
        let x = Tensor::from_slice(&[1.0, -2.0]);
        assert_eq!(d.forward(&x, true).unwrap(), x);
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn rejects_p_one() {
        let _ = DropoutLayer::new(1.0, 0);
    }
}
