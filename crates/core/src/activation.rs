use snn_nn::ActivationFn;

use crate::{Base2Kernel, TtfsKernel};

/// The relaxed CAT activation `φ_Clip(x) = clip(x, θ₀, 0)` (eq. 12–13).
///
/// Used during the bulk of training: it bounds activations into the range a
/// TTFS window can represent while staying continuous, so training remains
/// stable at high learning rates.
///
/// # Example
///
/// ```
/// use snn_nn::ActivationFn;
/// use ttfs_core::PhiClip;
///
/// let clip = PhiClip::new(1.0);
/// assert_eq!(clip.value(-0.5), 0.0);
/// assert_eq!(clip.value(0.3), 0.3);
/// assert_eq!(clip.value(2.0), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhiClip {
    theta0: f32,
}

impl PhiClip {
    /// Creates the clip activation with saturation level `theta0`.
    ///
    /// # Panics
    ///
    /// Panics if `theta0` is not strictly positive.
    pub fn new(theta0: f32) -> Self {
        assert!(theta0 > 0.0, "theta0 must be positive");
        Self { theta0 }
    }

    /// Saturation level θ₀.
    pub fn theta0(&self) -> f32 {
        self.theta0
    }
}

impl ActivationFn for PhiClip {
    fn value(&self, x: f32) -> f32 {
        x.clamp(0.0, self.theta0)
    }

    fn derivative(&self, x: f32) -> f32 {
        if x > 0.0 && x < self.theta0 {
            1.0
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "clip"
    }

    fn boxed_clone(&self) -> Box<dyn ActivationFn> {
        Box::new(*self)
    }
}

/// The exact CAT activation `φ_TTFS` (eq. 10): simulates TTFS
/// encode-then-decode during ANN training, so the trained ANN *is* the SNN's
/// data representation and conversion becomes lossless.
///
/// Piecewise (self-consistent form, see the crate docs on the paper's sign
/// typo):
///
/// * `x < κ(T)`   → `0` (the neuron would never fire within the window),
/// * `κ(T) ≤ x < θ₀` → `θ₀·2^(−k/τ)` with `k = ⌈−τ·log₂(x/θ₀)⌉`,
/// * `x ≥ θ₀`    → `θ₀` (fires immediately).
///
/// The derivative follows eq. 11 literally: straight-through (1) on the
/// representable band `[κ(T), θ₀)` and **`x` otherwise** — an unbounded
/// pass-through gradient on out-of-band units. That choice matters: it is
/// the destabilizing feedback that makes φ_TTFS training crash at high
/// learning rates (Fig. 3), forcing the switch to happen only after the LR
/// has decayed.
///
/// # Example
///
/// ```
/// use snn_nn::ActivationFn;
/// use ttfs_core::{Base2Kernel, PhiTtfs, TtfsKernel};
///
/// let kernel = Base2Kernel::paper_default();
/// let phi = PhiTtfs::new(kernel, 24);
/// // Exactly the value an SNN would decode from the emitted spike:
/// let x = 0.37;
/// let t = kernel.encode(x, 24).unwrap();
/// assert_eq!(phi.value(x), kernel.decode(t));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhiTtfs {
    kernel: Base2Kernel,
    window: u32,
}

impl PhiTtfs {
    /// Creates the TTFS activation for `kernel` over a fire window of
    /// `window` timesteps.
    pub fn new(kernel: Base2Kernel, window: u32) -> Self {
        Self { kernel, window }
    }

    /// The paper's hardware configuration: `T = 24`, `τ = 4`, `θ₀ = 1`.
    pub fn paper_default() -> Self {
        Self::new(Base2Kernel::paper_default(), 24)
    }

    /// The underlying kernel.
    pub fn kernel(&self) -> &Base2Kernel {
        &self.kernel
    }

    /// Fire-phase window T.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Smallest representable value `κ(T)` — inputs below it map to zero.
    pub fn min_representable(&self) -> f32 {
        self.kernel.value(self.window as f32)
    }
}

impl ActivationFn for PhiTtfs {
    fn value(&self, x: f32) -> f32 {
        match self.kernel.encode(x, self.window) {
            None => 0.0,
            Some(k) => self.kernel.decode(k),
        }
    }

    fn derivative(&self, x: f32) -> f32 {
        if x >= self.min_representable() && x < self.kernel.theta0() {
            1.0
        } else {
            x
        }
    }

    fn name(&self) -> &'static str {
        "ttfs"
    }

    fn boxed_clone(&self) -> Box<dyn ActivationFn> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clip_matches_eq13() {
        let c = PhiClip::new(1.0);
        assert_eq!(c.value(-1.0), 0.0);
        assert_eq!(c.value(0.5), 0.5);
        assert_eq!(c.value(1.5), 1.0);
        assert_eq!(c.derivative(0.5), 1.0);
        assert_eq!(c.derivative(1.5), 0.0);
        assert_eq!(c.derivative(-0.1), 0.0);
    }

    #[test]
    fn ttfs_piecewise_regions() {
        let phi = PhiTtfs::paper_default();
        // Region 1: below kappa(24) = 2^-6.
        assert_eq!(phi.value(0.01), 0.0);
        // Region 3: at/above theta0.
        assert_eq!(phi.value(1.0), 1.0);
        assert_eq!(phi.value(3.0), 1.0);
        // Region 2: quantized onto the 2^(-k/4) grid, never above x.
        let y = phi.value(0.37);
        assert!(y <= 0.37 && y > 0.0);
        let k = (-4.0 * y.log2()).round();
        assert!((y - (-k / 4.0).exp2()).abs() < 1e-6, "on grid");
    }

    #[test]
    fn ttfs_idempotent() {
        // phi(phi(x)) == phi(x): quantization onto the grid is idempotent.
        let phi = PhiTtfs::paper_default();
        for i in 0..=120 {
            let x = i as f32 / 100.0;
            let y = phi.value(x);
            assert!(
                (phi.value(y) - y).abs() < 1e-6,
                "not idempotent at x={x}: {y} -> {}",
                phi.value(y)
            );
        }
    }

    #[test]
    fn ttfs_monotone_nondecreasing() {
        let phi = PhiTtfs::paper_default();
        let mut last = -1.0f32;
        for i in 0..=200 {
            let y = phi.value(i as f32 / 150.0);
            assert!(y >= last - 1e-7);
            last = y;
        }
    }

    #[test]
    fn ttfs_error_vanishes_only_on_grid() {
        // Figure 2(b): clip has representation error vs the SNN, ttfs none.
        let phi = PhiTtfs::paper_default();
        let clip = PhiClip::new(1.0);
        let kernel = phi.kernel;
        let mut clip_err = 0.0f32;
        let mut ttfs_err = 0.0f32;
        for i in 1..=120 {
            let x = i as f32 / 100.0;
            // What the SNN represents after encode/decode:
            let snn = match kernel.encode(clip.value(x).min(phi.value(x).max(clip.value(x))), 24) {
                Some(k) => kernel.decode(k),
                None => 0.0,
            };
            let snn_of = |v: f32| match kernel.encode(v, 24) {
                Some(k) => kernel.decode(k),
                None => 0.0,
            };
            let _ = snn;
            clip_err += (clip.value(x) - snn_of(clip.value(x))).abs();
            ttfs_err += (phi.value(x) - snn_of(phi.value(x))).abs();
        }
        assert!(ttfs_err < 1e-5, "ttfs must be error-free: {ttfs_err}");
        assert!(clip_err > 0.1, "clip must show representation error");
    }

    #[test]
    fn eq11_derivative_band() {
        let phi = PhiTtfs::paper_default();
        assert_eq!(phi.derivative(0.5), 1.0);
        // Outside the band eq. 11 passes the input through: tiny gradient
        // below kappa(T), *amplifying* gradient beyond theta0.
        assert_eq!(phi.derivative(0.001), 0.001);
        assert_eq!(phi.derivative(1.5), 1.5);
    }

    #[test]
    fn min_representable_matches_kernel() {
        let phi = PhiTtfs::paper_default();
        assert!((phi.min_representable() - (2.0f32).powf(-6.0)).abs() < 1e-7);
    }
}
