use serde::{Deserialize, Serialize};
use snn_nn::{ActivationFn, Layer, Sequential};
use snn_tensor::{avg_pool2d, conv2d, gemm, max_pool2d, Conv2dSpec, Pool2dSpec, Tensor, Transpose};

use crate::{Base2Kernel, ConvertError, PhiTtfs};

/// One layer of a converted spiking network.
///
/// Batch-normalization layers do not appear here: conversion fuses them into
/// the preceding weighted layer (the paper fuses BN into convolution weights
/// during conversion).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SnnLayer {
    /// Convolution with fused weights; followed by a fire (encode) phase.
    Conv {
        /// Convolution geometry.
        spec: Conv2dSpec,
        /// Fused weight `[out_c, in_c, k, k]`.
        weight: Tensor,
        /// Fused bias `[out_c]`.
        bias: Tensor,
    },
    /// Fully connected layer; followed by a fire phase unless it is the
    /// final readout.
    Dense {
        /// Weight `[out, in]`.
        weight: Tensor,
        /// Bias `[out]`.
        bias: Tensor,
    },
    /// Max pooling. In TTFS coding this is exact on spikes: the maximum
    /// activation is the *earliest* spike in the window.
    MaxPool {
        /// Pooling geometry.
        spec: Pool2dSpec,
    },
    /// Average pooling (linear, folded into the integration phase).
    AvgPool {
        /// Pooling geometry.
        spec: Pool2dSpec,
    },
    /// Flatten `[N, C, H, W]` → `[N, rest]`.
    Flatten,
}

impl SnnLayer {
    /// Whether this layer carries weights (and therefore has a fire phase
    /// after it in the SNN pipeline).
    pub fn is_weighted(&self) -> bool {
        matches!(self, SnnLayer::Conv { .. } | SnnLayer::Dense { .. })
    }

    /// The fused weight tensor of a weighted layer (`[out_c, in_c, k, k]`
    /// for conv, `[out, in]` for dense), `None` for structural layers.
    pub fn weight(&self) -> Option<&Tensor> {
        match self {
            SnnLayer::Conv { weight, .. } | SnnLayer::Dense { weight, .. } => Some(weight),
            _ => None,
        }
    }

    /// The fused bias tensor of a weighted layer, `None` for structural
    /// layers.
    pub fn bias(&self) -> Option<&Tensor> {
        match self {
            SnnLayer::Conv { bias, .. } | SnnLayer::Dense { bias, .. } => Some(bias),
            _ => None,
        }
    }

    /// Output neuron-grid dims for an input grid of `in_dims` (per-sample
    /// dims, no batch axis: `[C, H, W]` spatial or `[features]` flat).
    ///
    /// This is the single source of truth external engines (CSR export in
    /// `snn-runtime`, hardware geometry) use to propagate shapes without
    /// re-deriving layer semantics.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::Structure`] if `in_dims` does not match the
    /// layer's expectations.
    pub fn out_dims(&self, in_dims: &[usize]) -> Result<Vec<usize>, ConvertError> {
        match self {
            SnnLayer::Conv { spec, .. } => {
                if in_dims.len() != 3 || in_dims[0] != spec.in_channels {
                    return Err(ConvertError::Structure(format!(
                        "conv expects [{}, H, W] input, got {:?}",
                        spec.in_channels, in_dims
                    )));
                }
                let (h, w) = (in_dims[1], in_dims[2]);
                if h + 2 * spec.padding < spec.kernel || w + 2 * spec.padding < spec.kernel {
                    return Err(ConvertError::Structure(format!(
                        "conv kernel {} does not fit a {h}x{w} input with padding {}",
                        spec.kernel, spec.padding
                    )));
                }
                let (oh, ow) = spec.output_hw(h, w);
                Ok(vec![spec.out_channels, oh, ow])
            }
            SnnLayer::Dense { weight, .. } => {
                let in_f = weight.dims()[1];
                let flat: usize = in_dims.iter().product();
                if flat != in_f {
                    return Err(ConvertError::Structure(format!(
                        "dense expects {in_f} input features, got {:?}",
                        in_dims
                    )));
                }
                Ok(vec![weight.dims()[0]])
            }
            SnnLayer::MaxPool { spec } | SnnLayer::AvgPool { spec } => {
                if in_dims.len() != 3 {
                    return Err(ConvertError::Structure(format!(
                        "pool expects [C, H, W] input, got {:?}",
                        in_dims
                    )));
                }
                if in_dims[1] < spec.window || in_dims[2] < spec.window {
                    return Err(ConvertError::Structure(format!(
                        "pool window {} does not fit a {}x{} input",
                        spec.window, in_dims[1], in_dims[2]
                    )));
                }
                let oh = (in_dims[1] - spec.window) / spec.stride + 1;
                let ow = (in_dims[2] - spec.window) / spec.stride + 1;
                Ok(vec![in_dims[0], oh, ow])
            }
            SnnLayer::Flatten => Ok(vec![in_dims.iter().product()]),
        }
    }
}

/// A converted SNN model: fused weights plus the single shared TTFS kernel.
///
/// Produced by [`convert`]; executed event-by-event by `snn-sim`, or exactly
/// via [`SnnModel::reference_forward`] (the activation-domain equivalent the
/// event simulation must reproduce bit-for-bit on decoded values).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnnModel {
    layers: Vec<SnnLayer>,
    kernel: Base2Kernel,
    window: u32,
}

impl SnnModel {
    /// Assembles a model from parts (used by tests and the T2FSNN baseline).
    pub fn from_parts(layers: Vec<SnnLayer>, kernel: Base2Kernel, window: u32) -> Self {
        Self {
            layers,
            kernel,
            window,
        }
    }

    /// The converted layers in execution order.
    pub fn layers(&self) -> &[SnnLayer] {
        &self.layers
    }

    /// Mutable access to the layers (quantization hook).
    pub fn layers_mut(&mut self) -> &mut [SnnLayer] {
        &mut self.layers
    }

    /// The shared TTFS kernel.
    pub fn kernel(&self) -> &Base2Kernel {
        &self.kernel
    }

    /// Fire-phase window T.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Number of weighted (spiking) layers.
    pub fn weighted_layers(&self) -> usize {
        self.layers.iter().filter(|l| l.is_weighted()).count()
    }

    /// End-to-end inference latency in timesteps for the paper's layer
    /// pipeline: every weighted layer occupies one window, plus one window
    /// for input encoding — `T × (L + 1)` (matches Table 2: T=24 → 408 for
    /// VGG-16's 16 weighted layers; T=48 → 816).
    pub fn latency_timesteps(&self) -> u32 {
        self.window * (self.weighted_layers() as u32 + 1)
    }

    /// Propagates per-sample input dims (`[C, H, W]`) through every layer,
    /// returning the neuron-grid dims at each layer boundary: entry `0` is
    /// the input grid, entry `i + 1` the output of layer `i`.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::Structure`] if the input does not fit the
    /// model geometry.
    pub fn shape_trace(&self, input_dims: &[usize]) -> Result<Vec<Vec<usize>>, ConvertError> {
        let mut trace = Vec::with_capacity(self.layers.len() + 1);
        trace.push(input_dims.to_vec());
        let mut cur = input_dims.to_vec();
        for layer in &self.layers {
            cur = layer.out_dims(&cur)?;
            trace.push(cur.clone());
        }
        Ok(trace)
    }

    /// Exact activation-domain forward pass of the converted SNN: the input
    /// is spike-encoded (`φ_TTFS`), every hidden weighted layer is followed
    /// by encode→decode quantization, and the final layer reads the raw
    /// membrane voltage.
    ///
    /// The event-driven simulator in `snn-sim` must produce exactly these
    /// values — that equivalence is the paper's "zero conversion loss".
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError`] if `x` does not match the model geometry.
    pub fn reference_forward(&self, x: &Tensor) -> Result<Tensor, ConvertError> {
        let phi = PhiTtfs::new(self.kernel, self.window);
        let mut cur = x.map(|v| phi.value(v)); // input spike coding
        let weighted = self.weighted_layers();
        let mut seen = 0usize;
        for layer in &self.layers {
            cur = match layer {
                SnnLayer::Conv { spec, weight, bias } => {
                    seen += 1;
                    let y =
                        conv2d(&cur, weight, Some(bias), spec).map_err(snn_nn::NnError::from)?;
                    if seen < weighted {
                        y.map(|v| phi.value(v))
                    } else {
                        y
                    }
                }
                SnnLayer::Dense { weight, bias } => {
                    seen += 1;
                    let mut y = gemm(&cur, Transpose::No, weight, Transpose::Yes)
                        .map_err(snn_nn::NnError::from)?;
                    let (n, out) = (y.dims()[0], y.dims()[1]);
                    let data = y.as_mut_slice();
                    for s in 0..n {
                        for (o, &b) in bias.as_slice().iter().enumerate() {
                            data[s * out + o] += b;
                        }
                    }
                    if seen < weighted {
                        y.map(|v| phi.value(v))
                    } else {
                        y
                    }
                }
                SnnLayer::MaxPool { spec } => {
                    max_pool2d(&cur, spec).map_err(snn_nn::NnError::from)?.0
                }
                SnnLayer::AvgPool { spec } => {
                    avg_pool2d(&cur, spec).map_err(snn_nn::NnError::from)?
                }
                SnnLayer::Flatten => {
                    let n = cur.dims()[0];
                    let rest = cur.len() / n.max(1);
                    cur.reshape(&[n, rest]).map_err(snn_nn::NnError::from)?
                }
            };
        }
        Ok(cur)
    }

    /// Classification accuracy of [`SnnModel::reference_forward`] on a
    /// labelled set.
    ///
    /// # Errors
    ///
    /// Propagates geometry errors from the forward pass.
    pub fn accuracy(&self, images: &Tensor, labels: &[usize]) -> Result<f32, ConvertError> {
        let n = images.dims()[0];
        if n == 0 {
            return Ok(0.0);
        }
        let sample_len = images.len() / n;
        let mut dims = images.dims().to_vec();
        let mut correct = 0usize;
        // Evaluate in small batches to bound memory.
        let bs = 16usize;
        let mut start = 0usize;
        while start < n {
            let end = (start + bs).min(n);
            dims[0] = end - start;
            let batch = Tensor::from_vec(
                images.as_slice()[start * sample_len..end * sample_len].to_vec(),
                &dims,
            )
            .map_err(snn_nn::NnError::from)?;
            let logits = self.reference_forward(&batch)?;
            let c = logits.dims()[1];
            for (s, &label) in labels[start..end].iter().enumerate() {
                let row = &logits.as_slice()[s * c..(s + 1) * c];
                let pred = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                if pred == label {
                    correct += 1;
                }
            }
            start = end;
        }
        Ok(correct as f32 / n as f32)
    }
}

fn fuse_conv_bn(
    spec: Conv2dSpec,
    weight: &Tensor,
    bias: &Tensor,
    bn: &snn_nn::BatchNorm2d,
) -> (Tensor, Tensor) {
    let gamma = bn.gamma().as_slice();
    let beta = bn.beta().as_slice();
    let mean = bn.running_mean().as_slice();
    let var = bn.running_var().as_slice();
    let mut w = weight.clone();
    let mut b = bias.clone();
    let per_oc = spec.in_channels * spec.kernel * spec.kernel;
    for oc in 0..spec.out_channels {
        let sigma = (var[oc] + snn_nn::BN_EPS).sqrt();
        let scale = gamma[oc] / sigma;
        for v in &mut w.as_mut_slice()[oc * per_oc..(oc + 1) * per_oc] {
            *v *= scale;
        }
        b.as_mut_slice()[oc] = (bias.as_slice()[oc] - mean[oc]) * scale + beta[oc];
    }
    (w, b)
}

/// Converts a CAT-trained ANN into an [`SnnModel`].
///
/// Performs the paper's conversion steps:
/// 1. fuses every `Conv → BatchNorm` pair into the convolution weights,
/// 2. drops activation layers (their role is taken over by the fire phase),
/// 3. keeps pooling/flatten as passthrough structure.
///
/// Output-layer weight normalization is a separate, explicit step
/// ([`normalize_output_layer`]) because it needs calibration data.
///
/// # Errors
///
/// Returns [`ConvertError::Structure`] if a BN layer is not directly
/// preceded by a convolution or the network has no weighted layers.
pub fn convert(
    net: &Sequential,
    kernel: Base2Kernel,
    window: u32,
) -> Result<SnnModel, ConvertError> {
    let mut layers: Vec<SnnLayer> = Vec::new();
    for layer in net.layers() {
        match layer {
            Layer::Conv2d(c) => layers.push(SnnLayer::Conv {
                spec: *c.spec(),
                weight: c.weight().clone(),
                bias: c.bias().clone(),
            }),
            Layer::Dense(d) => layers.push(SnnLayer::Dense {
                weight: d.weight().clone(),
                bias: d.bias().clone(),
            }),
            Layer::BatchNorm2d(bn) => match layers.pop() {
                Some(SnnLayer::Conv { spec, weight, bias }) => {
                    let (w, b) = fuse_conv_bn(spec, &weight, &bias, bn);
                    layers.push(SnnLayer::Conv {
                        spec,
                        weight: w,
                        bias: b,
                    });
                }
                other => {
                    return Err(ConvertError::Structure(format!(
                        "batchnorm must follow a convolution, found after {:?}",
                        other.map(|l| format!("{l:?}").chars().take(24).collect::<String>())
                    )));
                }
            },
            Layer::MaxPool2d(p) => layers.push(SnnLayer::MaxPool { spec: *p.spec() }),
            Layer::AvgPool2d(p) => layers.push(SnnLayer::AvgPool { spec: *p.spec() }),
            Layer::Flatten(_) => layers.push(SnnLayer::Flatten),
            Layer::Activation(_) => {} // becomes the fire phase
            Layer::Dropout(_) => {}    // identity at inference
        }
    }
    if !layers.iter().any(|l| l.is_weighted()) {
        return Err(ConvertError::Structure(
            "network has no weighted layers".into(),
        ));
    }
    match layers.iter().rev().find(|l| l.is_weighted()) {
        Some(SnnLayer::Dense { .. }) => {}
        _ => {
            return Err(ConvertError::Structure(
                "final weighted layer must be a dense classifier".into(),
            ));
        }
    }
    Ok(SnnModel {
        layers,
        kernel,
        window,
    })
}

/// Applies the paper's output-layer weight normalization (after Rueckauer et
/// al.): scales the final dense layer so that its largest absolute
/// pre-activation over `calibration` is 1. Argmax (and therefore accuracy)
/// is invariant; the membrane voltages stay inside the representable range
/// of downstream fixed-point hardware.
///
/// Returns the scale factor that was applied (`1/λ`).
///
/// # Errors
///
/// Returns [`ConvertError`] if the model has no dense output layer or the
/// calibration batch does not match the model geometry.
pub fn normalize_output_layer(
    model: &mut SnnModel,
    calibration: &Tensor,
) -> Result<f32, ConvertError> {
    let logits = model.reference_forward(calibration)?;
    let lambda = logits.abs_max();
    if lambda <= 0.0 {
        return Ok(1.0);
    }
    let scale = 1.0 / lambda;
    let last_weighted = model
        .layers
        .iter_mut()
        .rev()
        .find(|l| l.is_weighted())
        .ok_or_else(|| ConvertError::Structure("no weighted layers".into()))?;
    match last_weighted {
        SnnLayer::Dense { weight, bias } => {
            weight.map_inplace(|v| v * scale);
            bias.map_inplace(|v| v * scale);
        }
        _ => {
            return Err(ConvertError::Structure("output layer is not dense".into()));
        }
    }
    Ok(scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_nn::{
        ActivationLayer, BatchNorm2d, Conv2dLayer, DenseLayer, Flatten, Layer, MaxPool2dLayer,
        Relu, Sequential,
    };

    fn tiny_cnn(rng: &mut StdRng) -> Sequential {
        Sequential::new(vec![
            Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(1, 4, 3, 1, 1), rng)),
            Layer::BatchNorm2d(BatchNorm2d::new(4)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::MaxPool2d(MaxPool2dLayer::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(4 * 4 * 4, 3, rng)),
        ])
    }

    #[test]
    fn convert_structure() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = tiny_cnn(&mut rng);
        let model = convert(&net, Base2Kernel::paper_default(), 24).unwrap();
        assert_eq!(model.weighted_layers(), 2);
        assert_eq!(model.layers().len(), 4); // conv, pool, flatten, dense
        assert_eq!(model.latency_timesteps(), 24 * 3);
    }

    #[test]
    fn bn_fusion_is_exact() {
        // conv -> BN (eval mode) must equal fused conv.
        let mut rng = StdRng::seed_from_u64(1);
        let spec = Conv2dSpec::new(2, 3, 3, 1, 1);
        let mut conv = Conv2dLayer::new(spec, &mut rng);
        let mut bn = BatchNorm2d::new(3);
        bn.set_running_stats(
            Tensor::from_slice(&[0.2, -0.1, 0.4]),
            Tensor::from_slice(&[1.5, 0.7, 2.0]),
        )
        .unwrap();
        // give gamma/beta non-trivial values via visit_params
        let mut it = 0;
        bn.visit_params(&mut |p, _| {
            for (i, v) in p.as_mut_slice().iter_mut().enumerate() {
                *v = if it == 0 {
                    1.0 + 0.3 * i as f32
                } else {
                    0.1 * i as f32
                };
            }
            it += 1;
        });

        let x = snn_tensor::kaiming_normal(&[2, 2, 5, 5], 18, &mut rng);
        let reference = {
            let y = conv.forward(&x).unwrap();
            bn.forward(&y, false).unwrap()
        };
        let (fw, fb) = fuse_conv_bn(spec, conv.weight(), conv.bias(), &bn);
        let fused = conv2d(&x, &fw, Some(&fb), &spec).unwrap();
        assert!(fused.allclose(&reference, 1e-4));
    }

    #[test]
    fn rejects_bn_without_conv() {
        let net = Sequential::new(vec![Layer::BatchNorm2d(BatchNorm2d::new(2))]);
        assert!(matches!(
            convert(&net, Base2Kernel::paper_default(), 24),
            Err(ConvertError::Structure(_))
        ));
    }

    #[test]
    fn rejects_conv_readout() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = Sequential::new(vec![Layer::Conv2d(Conv2dLayer::new(
            Conv2dSpec::new(1, 2, 3, 1, 1),
            &mut rng,
        ))]);
        assert!(convert(&net, Base2Kernel::paper_default(), 24).is_err());
    }

    #[test]
    fn reference_forward_shape_and_quantization() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = tiny_cnn(&mut rng);
        let model = convert(&net, Base2Kernel::paper_default(), 24).unwrap();
        let x = Tensor::full(&[2, 1, 8, 8], 0.37);
        let y = model.reference_forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
    }

    #[test]
    fn normalize_output_preserves_argmax() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = tiny_cnn(&mut rng);
        let mut model = convert(&net, Base2Kernel::paper_default(), 24).unwrap();
        let x = snn_tensor::uniform(&[4, 1, 8, 8], 0.0, 1.0, &mut rng);
        let before = model.reference_forward(&x).unwrap();
        let scale = normalize_output_layer(&mut model, &x).unwrap();
        let after = model.reference_forward(&x).unwrap();
        assert!(after.abs_max() <= 1.0 + 1e-4);
        assert!(scale > 0.0);
        for s in 0..4 {
            let row_b = &before.as_slice()[s * 3..(s + 1) * 3];
            let row_a = &after.as_slice()[s * 3..(s + 1) * 3];
            let am = |r: &[f32]| {
                r.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap()
            };
            assert_eq!(am(row_b), am(row_a));
        }
    }

    #[test]
    fn out_dims_rejects_undersized_grids() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = tiny_cnn(&mut rng);
        let model = convert(&net, Base2Kernel::paper_default(), 24).unwrap();
        // Pool window 2 cannot fit a 1x1 grid; conv 3x3 (pad 1) cannot fit
        // a 0x0 grid — both must error, not underflow.
        let pool = model
            .layers()
            .iter()
            .find(|l| matches!(l, SnnLayer::MaxPool { .. }));
        assert!(matches!(
            pool.unwrap().out_dims(&[4, 1, 1]),
            Err(ConvertError::Structure(_))
        ));
        let conv = &model.layers()[0];
        assert!(matches!(
            conv.out_dims(&[1, 0, 0]),
            Err(ConvertError::Structure(_))
        ));
        assert!(model.shape_trace(&[1, 1, 1]).is_err());
        assert_eq!(model.shape_trace(&[1, 8, 8]).unwrap().len(), 5);
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = tiny_cnn(&mut rng);
        let model = convert(&net, Base2Kernel::paper_default(), 24).unwrap();
        let x = snn_tensor::uniform(&[6, 1, 8, 8], 0.0, 1.0, &mut rng);
        let logits = model.reference_forward(&x).unwrap();
        let labels: Vec<usize> = (0..6)
            .map(|s| {
                logits.as_slice()[s * 3..(s + 1) * 3]
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap()
            })
            .collect();
        let acc = model.accuracy(&x, &labels).unwrap();
        assert!((acc - 1.0).abs() < 1e-6);
    }
}
