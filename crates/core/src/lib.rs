//! # ttfs-core — the paper's contribution
//!
//! Conversion-aware training (CAT) and base-2 time-to-first-spike (TTFS)
//! coding, reproducing §3 of *"A Time-to-first-spike Coding and Conversion
//! Aware Training for Energy-Efficient Deep Spiking Neural Network Processor
//! Design"* (Lew, Lee, Park — DAC 2022).
//!
//! The pieces:
//!
//! * [`Base2Kernel`] — the paper's new kernel `κ(t) = θ₀·2^(−t/τ)` (eq. 9)
//!   with a single global `τ`, chosen so spike times live in the log2 domain
//!   and synaptic multiplies reduce to LUT + shift in hardware.
//! * [`ExpKernel`] — the baseline T2FSNN kernel `ε(t) = θ₀·e^(−(t−t_d)/τ)`
//!   (eq. 5) with per-layer `t_d`, `τ`.
//! * [`PhiClip`] / [`PhiTtfs`] — the CAT activation functions (eq. 10–13)
//!   that simulate SNN data representation during ANN training.
//! * [`CatSchedule`] / [`train_with_cat`] — the `ReLU → φ_Clip → φ_TTFS`
//!   switching schedule with the paper's LR-coupled switch-epoch rule.
//! * [`convert`] — ANN→SNN conversion: BN fusion into convolution weights
//!   and output-layer weight normalization, producing an [`SnnModel`].
//! * [`t2fsnn`] — the post-conversion kernel-tuning baseline the paper
//!   compares against in Table 2.
//!
//! ## Sign convention
//!
//! Equations (8), (10) and (14) of the paper contain sign/scale typos (the
//! printed forms are not mutually consistent with the kernel definitions).
//! This crate implements the self-consistent versions: a neuron with
//! membrane voltage `u` crosses the falling threshold `θ₀·2^(−k/τ)` at
//! `k = ⌈−τ·log₂(u/θ₀)⌉`, and the decoded value is `θ₀·2^(−k/τ)`, so
//! `φ_TTFS(x) = decode(encode(x))` exactly — which is the property the whole
//! method rests on (Table 1, row I+II+III, conversion loss ≈ 0).

mod activation;
mod cat;
mod convert;
mod error;
mod kernel;
mod serialize;
pub mod t2fsnn;

pub use activation::{PhiClip, PhiTtfs};
pub use cat::{
    encode_input_as_spikes, train_with_cat, CatComponents, CatPhase, CatSchedule, CatTrainLog,
    EpochRecord,
};
pub use convert::{convert, normalize_output_layer, SnnLayer, SnnModel};
pub use error::ConvertError;
pub use kernel::{Base2Kernel, ExpKernel, TtfsKernel};
