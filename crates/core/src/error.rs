use std::error::Error;
use std::fmt;

use snn_nn::NnError;

/// Errors raised during ANN→SNN conversion or CAT training.
#[derive(Debug, Clone, PartialEq)]
pub enum ConvertError {
    /// A substrate layer operation failed.
    Nn(NnError),
    /// The network structure cannot be converted (e.g. a BN layer not
    /// preceded by a convolution, or no trailing dense classifier).
    Structure(String),
    /// The CAT schedule is inconsistent (e.g. switch epochs out of order).
    Schedule(String),
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvertError::Nn(e) => write!(f, "{e}"),
            ConvertError::Structure(msg) => write!(f, "unconvertible network: {msg}"),
            ConvertError::Schedule(msg) => write!(f, "invalid CAT schedule: {msg}"),
        }
    }
}

impl Error for ConvertError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConvertError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for ConvertError {
    fn from(e: NnError) -> Self {
        ConvertError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_variants() {
        assert!(ConvertError::Structure("x".into())
            .to_string()
            .contains("x"));
        assert!(ConvertError::Schedule("y".into()).to_string().contains("y"));
    }
}
