//! Converted-model persistence: a deployed SNN (fused weights + the shared
//! kernel) is the artifact that ships to the processor, so it needs a
//! stable on-disk format.

use std::fs;
use std::path::Path;

use crate::{ConvertError, SnnModel};

impl SnnModel {
    /// Serializes the model to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::Structure`] if serialization fails (should
    /// not happen for well-formed models).
    pub fn to_json(&self) -> Result<String, ConvertError> {
        serde_json::to_string(self).map_err(|e| ConvertError::Structure(format!("serialize: {e}")))
    }

    /// Deserializes a model from a JSON string produced by
    /// [`SnnModel::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::Structure`] on malformed input.
    pub fn from_json(json: &str) -> Result<Self, ConvertError> {
        serde_json::from_str(json).map_err(|e| ConvertError::Structure(format!("deserialize: {e}")))
    }

    /// Writes the model to a file.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::Structure`] on serialization or I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ConvertError> {
        let json = self.to_json()?;
        fs::write(path.as_ref(), json)
            .map_err(|e| ConvertError::Structure(format!("write model file: {e}")))
    }

    /// Reads a model from a file written by [`SnnModel::save`].
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::Structure`] on I/O or parse failure.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ConvertError> {
        let json = fs::read_to_string(path.as_ref())
            .map_err(|e| ConvertError::Structure(format!("read model file: {e}")))?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{convert, Base2Kernel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_nn::{ActivationLayer, DenseLayer, Flatten, Layer, Relu, Sequential};

    fn model() -> SnnModel {
        let mut rng = StdRng::seed_from_u64(0);
        let net = Sequential::new(vec![
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(8, 4, &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::Dense(DenseLayer::new(4, 2, &mut rng)),
        ]);
        convert(&net, Base2Kernel::paper_default(), 24).unwrap()
    }

    #[test]
    fn json_roundtrip_preserves_behaviour() {
        let m = model();
        let json = m.to_json().unwrap();
        let restored = SnnModel::from_json(&json).unwrap();
        assert_eq!(restored.weighted_layers(), m.weighted_layers());
        assert_eq!(restored.window(), m.window());
        let x = snn_tensor::Tensor::full(&[1, 1, 2, 4], 0.5);
        let a = m.reference_forward(&x).unwrap();
        let b = restored.reference_forward(&x).unwrap();
        assert!(a.allclose(&b, 0.0), "bit-exact roundtrip");
    }

    #[test]
    fn file_roundtrip() {
        let m = model();
        let path = std::env::temp_dir().join("ttfs_snn_model_test.json");
        m.save(&path).unwrap();
        let restored = SnnModel::load(&path).unwrap();
        assert_eq!(restored.weighted_layers(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(SnnModel::from_json("{not json").is_err());
        assert!(SnnModel::load("/nonexistent/path/model.json").is_err());
    }
}
