use rand::Rng;
use snn_nn::{evaluate, train_epoch, ActivationFn, LrSchedule, Relu, Sequential, Sgd, TrainConfig};
use snn_tensor::Tensor;

use crate::{ConvertError, PhiClip, PhiTtfs, TtfsKernel};

/// Which CAT components are active during ANN training — the rows of
/// Table 1.
///
/// * **I** — hidden activations use `φ_Clip` (later `φ_TTFS` if III).
/// * **II** — the *input image* is passed through `φ_TTFS` so the ANN sees
///   spike-coded inputs from the first epoch.
/// * **III** — hidden activations switch to `φ_TTFS` late in training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CatComponents {
    /// Component II: TTFS-encode the input during training.
    pub input_ttfs: bool,
    /// Component III: switch hidden activations to φ_TTFS late in training.
    pub hidden_ttfs: bool,
}

impl CatComponents {
    /// Row "I" of Table 1: clip activation only.
    pub fn clip_only() -> Self {
        Self {
            input_ttfs: false,
            hidden_ttfs: false,
        }
    }

    /// Row "I+II": clip plus TTFS-coded inputs.
    pub fn clip_and_input() -> Self {
        Self {
            input_ttfs: true,
            hidden_ttfs: false,
        }
    }

    /// Row "I+II+III": the full method.
    pub fn full() -> Self {
        Self {
            input_ttfs: true,
            hidden_ttfs: true,
        }
    }

    /// Table 1 row label.
    pub fn label(&self) -> &'static str {
        match (self.input_ttfs, self.hidden_ttfs) {
            (false, false) => "I",
            (true, false) => "I+II",
            (true, true) => "I+II+III",
            (false, true) => "I+III",
        }
    }
}

/// The activation family in effect during an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CatPhase {
    /// Plain ReLU warm-up.
    Relu,
    /// Relaxed φ_Clip phase (bulk of training).
    Clip,
    /// Exact φ_TTFS phase (after the learning rate has decayed).
    Ttfs,
}

/// The CAT activation-switching schedule (§3.1).
///
/// The paper trains 200 epochs: ReLU for the first 10, φ_Clip until epoch
/// 170, φ_TTFS afterwards — where 170 was chosen because φ_TTFS is unstable
/// until the LR has stepped down to 1e-4 at epoch 160 (Fig. 3).
/// [`CatSchedule::paper_scaled`] keeps those proportions for any epoch
/// budget.
///
/// # Example
///
/// ```
/// use ttfs_core::{CatComponents, CatPhase, CatSchedule, PhiTtfs};
///
/// let s = CatSchedule::paper_scaled(40, PhiTtfs::paper_default(), CatComponents::full());
/// assert_eq!(s.phase_at(0), CatPhase::Relu);
/// assert_eq!(s.phase_at(20), CatPhase::Clip);
/// assert_eq!(s.phase_at(36), CatPhase::Ttfs);
/// ```
#[derive(Debug, Clone)]
pub struct CatSchedule {
    /// Total training epochs.
    pub total_epochs: usize,
    /// Epochs of initial ReLU warm-up.
    pub relu_epochs: usize,
    /// First epoch of the φ_TTFS phase (ignored unless component III).
    pub ttfs_from: usize,
    /// Active CAT components.
    pub components: CatComponents,
    /// The TTFS activation (kernel + window) being trained towards.
    pub phi: PhiTtfs,
    /// Learning-rate schedule.
    pub lr: LrSchedule,
}

impl CatSchedule {
    /// Builds a schedule with explicit switch points.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::Schedule`] unless
    /// `relu_epochs ≤ ttfs_from ≤ total_epochs`.
    pub fn new(
        total_epochs: usize,
        relu_epochs: usize,
        ttfs_from: usize,
        components: CatComponents,
        phi: PhiTtfs,
        lr: LrSchedule,
    ) -> Result<Self, ConvertError> {
        if relu_epochs > ttfs_from || ttfs_from > total_epochs {
            return Err(ConvertError::Schedule(format!(
                "need relu ({relu_epochs}) <= ttfs_from ({ttfs_from}) <= total ({total_epochs})"
            )));
        }
        Ok(Self {
            total_epochs,
            relu_epochs,
            ttfs_from,
            components,
            phi,
            lr,
        })
    }

    /// The paper's 200-epoch recipe (ReLU 10, φ_TTFS from 170, LR steps at
    /// 80/120/160) compressed proportionally into `total_epochs`.
    pub fn paper_scaled(total_epochs: usize, phi: PhiTtfs, components: CatComponents) -> Self {
        let relu = (total_epochs / 20).max(1); // 10/200 = 5 %
        let ttfs_from = (total_epochs * 17 / 20).max(relu); // 170/200 = 85 %
        Self {
            total_epochs,
            relu_epochs: relu,
            ttfs_from,
            components,
            phi,
            lr: LrSchedule::paper_scaled(total_epochs),
        }
    }

    /// Activation family in effect at `epoch`, honouring the component
    /// flags (without III the φ_TTFS phase degenerates to φ_Clip).
    pub fn phase_at(&self, epoch: usize) -> CatPhase {
        if epoch < self.relu_epochs {
            CatPhase::Relu
        } else if epoch < self.ttfs_from || !self.components.hidden_ttfs {
            CatPhase::Clip
        } else {
            CatPhase::Ttfs
        }
    }

    /// Installs the activation functions for `epoch` into `net`.
    pub fn apply(&self, net: &mut Sequential, epoch: usize) {
        let phi = self.phi;
        let theta0 = phi.kernel().theta0();
        let factory: Box<dyn Fn(usize) -> Box<dyn ActivationFn>> = match self.phase_at(epoch) {
            CatPhase::Relu => Box::new(|_| Box::new(Relu)),
            CatPhase::Clip => Box::new(move |_| Box::new(PhiClip::new(theta0))),
            CatPhase::Ttfs => Box::new(move |_| Box::new(phi)),
        };
        net.set_activations(&factory);
    }
}

/// TTFS-encodes a batch of images (component II / SNN input coding): each
/// pixel is replaced by the value its first spike would decode to.
///
/// # Example
///
/// ```
/// use snn_tensor::Tensor;
/// use ttfs_core::{encode_input_as_spikes, PhiTtfs};
///
/// let x = Tensor::from_slice(&[0.37, 0.0, 1.0]);
/// let e = encode_input_as_spikes(&x, &PhiTtfs::paper_default());
/// assert!(e.as_slice()[0] <= 0.37);
/// assert_eq!(e.as_slice()[2], 1.0);
/// ```
pub fn encode_input_as_spikes(images: &Tensor, phi: &PhiTtfs) -> Tensor {
    images.map(|v| phi.value(v))
}

/// Per-epoch record of a CAT training run (the data behind Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Activation family in effect.
    pub phase: CatPhase,
    /// Learning rate in effect.
    pub lr: f32,
    /// Mean training loss.
    pub train_loss: f32,
    /// Training accuracy.
    pub train_accuracy: f32,
    /// Held-out accuracy.
    pub test_accuracy: f32,
}

/// Full log of a CAT training run.
#[derive(Debug, Clone, Default)]
pub struct CatTrainLog {
    /// One record per epoch.
    pub epochs: Vec<EpochRecord>,
}

impl CatTrainLog {
    /// Final test accuracy (0 if no epochs ran).
    pub fn final_test_accuracy(&self) -> f32 {
        self.epochs.last().map(|e| e.test_accuracy).unwrap_or(0.0)
    }

    /// Best test accuracy across epochs.
    pub fn best_test_accuracy(&self) -> f32 {
        self.epochs
            .iter()
            .map(|e| e.test_accuracy)
            .fold(0.0, f32::max)
    }

    /// Whether training collapsed (final accuracy far below the best —
    /// the "crash" signature of Fig. 3).
    pub fn crashed(&self, tolerance: f32) -> bool {
        self.final_test_accuracy() + tolerance < self.best_test_accuracy()
    }
}

/// Trains `net` with the full CAT procedure: activation switching per
/// `schedule`, optional input TTFS encoding (component II), SGD with
/// momentum 0.9 / weight decay 5e-4 (the paper's §3.1 settings) and the
/// schedule's LR steps.
///
/// # Errors
///
/// Propagates substrate errors (shape mismatches, bad labels).
#[allow(clippy::too_many_arguments)] // mirrors the paper's training signature
pub fn train_with_cat(
    net: &mut Sequential,
    schedule: &CatSchedule,
    train_images: &Tensor,
    train_labels: &[usize],
    test_images: &Tensor,
    test_labels: &[usize],
    batch_size: usize,
    rng: &mut impl Rng,
) -> Result<CatTrainLog, ConvertError> {
    let mut opt = Sgd::new(schedule.lr.lr_at(0), 0.9, 5e-4);
    let config = TrainConfig {
        batch_size,
        shuffle: true,
    };
    let encoded_train;
    let encoded_test;
    let (train_x, test_x): (&Tensor, &Tensor) = if schedule.components.input_ttfs {
        encoded_train = encode_input_as_spikes(train_images, &schedule.phi);
        encoded_test = encode_input_as_spikes(test_images, &schedule.phi);
        (&encoded_train, &encoded_test)
    } else {
        (train_images, test_images)
    };

    let mut log = CatTrainLog::default();
    for epoch in 0..schedule.total_epochs {
        schedule.apply(net, epoch);
        opt.set_lr(schedule.lr.lr_at(epoch));
        let stats = train_epoch(net, &mut opt, train_x, train_labels, &config, rng)?;
        let test_accuracy = evaluate(net, test_x, test_labels, batch_size)?;
        log.epochs.push(EpochRecord {
            epoch,
            phase: schedule.phase_at(epoch),
            lr: opt.lr(),
            train_loss: stats.loss,
            train_accuracy: stats.accuracy,
            test_accuracy,
        });
    }
    // Leave the network in its final-phase state (φ_TTFS for component III),
    // ready for conversion.
    schedule.apply(net, schedule.total_epochs.saturating_sub(1));
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_nn::{ActivationLayer, DenseLayer, Layer};

    fn schedule(components: CatComponents) -> CatSchedule {
        CatSchedule::paper_scaled(20, PhiTtfs::paper_default(), components)
    }

    #[test]
    fn paper_scaled_proportions() {
        let s = schedule(CatComponents::full());
        assert_eq!(s.relu_epochs, 1);
        assert_eq!(s.ttfs_from, 17);
        assert_eq!(s.lr.milestones(), &[8, 12, 16]);
    }

    #[test]
    fn phase_transitions() {
        let s = schedule(CatComponents::full());
        assert_eq!(s.phase_at(0), CatPhase::Relu);
        assert_eq!(s.phase_at(1), CatPhase::Clip);
        assert_eq!(s.phase_at(16), CatPhase::Clip);
        assert_eq!(s.phase_at(17), CatPhase::Ttfs);
    }

    #[test]
    fn without_component_iii_no_ttfs_phase() {
        let s = schedule(CatComponents::clip_only());
        assert_eq!(s.phase_at(19), CatPhase::Clip);
    }

    #[test]
    fn labels_match_table1_rows() {
        assert_eq!(CatComponents::clip_only().label(), "I");
        assert_eq!(CatComponents::clip_and_input().label(), "I+II");
        assert_eq!(CatComponents::full().label(), "I+II+III");
    }

    #[test]
    fn schedule_validation() {
        let phi = PhiTtfs::paper_default();
        assert!(CatSchedule::new(
            10,
            5,
            3,
            CatComponents::full(),
            phi,
            LrSchedule::constant(0.1)
        )
        .is_err());
        assert!(CatSchedule::new(
            10,
            2,
            8,
            CatComponents::full(),
            phi,
            LrSchedule::constant(0.1)
        )
        .is_ok());
    }

    #[test]
    fn apply_switches_network_activations() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Sequential::new(vec![
            Layer::Dense(DenseLayer::new(2, 4, &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::Dense(DenseLayer::new(4, 2, &mut rng)),
        ]);
        let s = schedule(CatComponents::full());
        s.apply(&mut net, 5);
        assert_eq!(net.activation_names(), vec!["clip"]);
        s.apply(&mut net, 19);
        assert_eq!(net.activation_names(), vec!["ttfs"]);
    }

    #[test]
    fn crash_detector() {
        let mut log = CatTrainLog::default();
        for (e, acc) in [(0usize, 0.3f32), (1, 0.6), (2, 0.1)] {
            log.epochs.push(EpochRecord {
                epoch: e,
                phase: CatPhase::Clip,
                lr: 0.1,
                train_loss: 0.0,
                train_accuracy: acc,
                test_accuracy: acc,
            });
        }
        assert!(log.crashed(0.1));
        assert_eq!(log.best_test_accuracy(), 0.6);
    }

    /// End-to-end smoke: CAT training on separable blobs still learns and
    /// ends in the TTFS phase.
    #[test]
    fn cat_training_learns_blobs() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 60;
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let label = i % 2;
            let c = if label == 0 { 0.25 } else { 0.75 };
            data.push(c + rng.gen_range(-0.1..0.1f32));
            data.push(c + rng.gen_range(-0.1..0.1f32));
            labels.push(label);
        }
        let images = Tensor::from_vec(data, &[n, 2]).unwrap();

        let mut net = Sequential::new(vec![
            Layer::Dense(DenseLayer::new(2, 16, &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::Dense(DenseLayer::new(16, 2, &mut rng)),
        ]);
        let s = schedule(CatComponents::full());
        let log = train_with_cat(
            &mut net, &s, &images, &labels, &images, &labels, 16, &mut rng,
        )
        .unwrap();
        assert_eq!(log.epochs.len(), 20);
        assert!(
            log.final_test_accuracy() > 0.9,
            "{:?}",
            log.final_test_accuracy()
        );
        assert_eq!(net.activation_names(), vec!["ttfs"]);
    }
}
