//! T2FSNN baseline (Park et al., DAC 2020): kernel-based TTFS coding with
//! **per-layer** base-e kernels and post-conversion kernel tuning.
//!
//! This is the comparison point of Table 2 and the "Base" configuration of
//! Fig. 6. Its per-layer `(τ, t_d)` freedom buys accuracy at a given window
//! but costs hardware: every layer needs its own (SRAM-backed,
//! reconfigurable) kernel in the decoder, which CAT's single shared kernel
//! eliminates.

use snn_tensor::{avg_pool2d, conv2d, gemm, max_pool2d, Tensor, Transpose};

use crate::{ConvertError, ExpKernel, SnnLayer, SnnModel, TtfsKernel};

/// A converted SNN using T2FSNN-style per-layer exponential kernels.
#[derive(Debug, Clone)]
pub struct T2fsnnModel {
    layers: Vec<SnnLayer>,
    kernels: Vec<ExpKernel>,
    window: u32,
    early_firing: bool,
}

impl T2fsnnModel {
    /// Wraps converted layers with one exponential kernel per weighted
    /// layer, all initialized to `init`.
    pub fn new(model: &SnnModel, init: ExpKernel, window: u32) -> Self {
        let layers = model.layers().to_vec();
        let weighted = layers.iter().filter(|l| l.is_weighted()).count();
        Self {
            layers,
            kernels: vec![init; weighted],
            window,
            early_firing: true, // the paper notes T2FSNN uses early firing
        }
    }

    /// Per-weighted-layer kernels.
    pub fn kernels(&self) -> &[ExpKernel] {
        &self.kernels
    }

    /// Enables/disables the early-firing latency optimization.
    pub fn set_early_firing(&mut self, on: bool) {
        self.early_firing = on;
    }

    /// Pipeline latency in timesteps. T2FSNN's early-firing technique lets
    /// a layer's fire phase overlap the second half of its integration
    /// phase, halving effective latency (Table 2: 680 vs 1360 at T=80).
    pub fn latency_timesteps(&self) -> u32 {
        let base = self.window * (self.kernels.len() as u32 + 1);
        if self.early_firing {
            base / 2
        } else {
            base
        }
    }

    /// Mean squared coding error of `kernel` on an activation sample —
    /// the per-layer objective the post-conversion optimization minimizes.
    pub fn coding_error(kernel: &ExpKernel, activations: &[f32], window: u32) -> f32 {
        if activations.is_empty() {
            return 0.0;
        }
        let mut err = 0.0f32;
        for &x in activations {
            let decoded = match kernel.encode(x.max(0.0), window) {
                Some(k) => kernel.decode(k),
                None => 0.0,
            };
            err += (x.max(0.0) - decoded).powi(2);
        }
        err / activations.len() as f32
    }

    /// Post-conversion optimization (the `t_d`/`τ` tuning of T2FSNN §III):
    /// gradient-free coordinate descent on the layer-wise coding error over
    /// a calibration batch. Returns the per-layer errors after tuning.
    ///
    /// # Errors
    ///
    /// Propagates geometry errors from the calibration forward pass.
    pub fn tune_kernels(&mut self, calibration: &Tensor) -> Result<Vec<f32>, ConvertError> {
        let samples = self.layer_activations(calibration)?;
        let mut errors = Vec::with_capacity(self.kernels.len());
        for (kernel, acts) in self.kernels.iter_mut().zip(&samples) {
            let mut best = *kernel;
            let mut best_err = Self::coding_error(&best, acts, self.window);
            // Coordinate descent with shrinking steps over (tau, t_d).
            let mut tau_step = best.tau() * 0.5;
            let mut td_step = 2.0f32;
            for _ in 0..24 {
                let mut improved = false;
                for (dt, dd) in [
                    (tau_step, 0.0),
                    (-tau_step, 0.0),
                    (0.0, td_step),
                    (0.0, -td_step),
                ] {
                    let tau = (best.tau() + dt).max(0.5);
                    let t_d = best.t_d() + dd;
                    let cand = best.with_params(tau, t_d);
                    let e = Self::coding_error(&cand, acts, self.window);
                    if e < best_err {
                        best = cand;
                        best_err = e;
                        improved = true;
                    }
                }
                if !improved {
                    tau_step *= 0.5;
                    td_step *= 0.5;
                    if tau_step < 1e-3 && td_step < 1e-3 {
                        break;
                    }
                }
            }
            *kernel = best;
            errors.push(best_err);
        }
        Ok(errors)
    }

    /// Pre-fire-phase activations of every weighted hidden layer on a
    /// calibration batch (inputs to the per-layer encode step).
    fn layer_activations(&self, x: &Tensor) -> Result<Vec<Vec<f32>>, ConvertError> {
        let weighted = self.kernels.len();
        let mut out: Vec<Vec<f32>> = vec![Vec::new(); weighted];
        let mut cur = self.encode_with(0, x); // input coded by layer-0 kernel
        let mut seen = 0usize;
        for layer in &self.layers {
            cur = self.step(layer, &cur, &mut seen, &mut Some(&mut out))?;
        }
        Ok(out)
    }

    /// Activation-domain reference forward pass with per-layer kernels.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError`] on geometry mismatch.
    pub fn reference_forward(&self, x: &Tensor) -> Result<Tensor, ConvertError> {
        let mut cur = self.encode_with(0, x);
        let mut seen = 0usize;
        for layer in &self.layers {
            cur = self.step(layer, &cur, &mut seen, &mut None)?;
        }
        Ok(cur)
    }

    fn encode_with(&self, kernel_idx: usize, x: &Tensor) -> Tensor {
        let kernel = self.kernels[kernel_idx.min(self.kernels.len() - 1)];
        let window = self.window;
        x.map(|v| match kernel.encode(v, window) {
            Some(k) => kernel.decode(k),
            None => 0.0,
        })
    }

    fn step(
        &self,
        layer: &SnnLayer,
        cur: &Tensor,
        seen: &mut usize,
        tap: &mut Option<&mut Vec<Vec<f32>>>,
    ) -> Result<Tensor, ConvertError> {
        let weighted = self.kernels.len();
        Ok(match layer {
            SnnLayer::Conv { spec, weight, bias } => {
                let y = conv2d(cur, weight, Some(bias), spec).map_err(snn_nn::NnError::from)?;
                let idx = *seen;
                *seen += 1;
                if let Some(t) = tap.as_deref_mut() {
                    t[idx].extend_from_slice(y.as_slice());
                }
                if *seen < weighted {
                    self.encode_with(idx, &y)
                } else {
                    y
                }
            }
            SnnLayer::Dense { weight, bias } => {
                let mut y = gemm(cur, Transpose::No, weight, Transpose::Yes)
                    .map_err(snn_nn::NnError::from)?;
                let (n, out_f) = (y.dims()[0], y.dims()[1]);
                let data = y.as_mut_slice();
                for s in 0..n {
                    for (o, &b) in bias.as_slice().iter().enumerate() {
                        data[s * out_f + o] += b;
                    }
                }
                let idx = *seen;
                *seen += 1;
                if let Some(t) = tap.as_deref_mut() {
                    t[idx].extend_from_slice(y.as_slice());
                }
                if *seen < weighted {
                    self.encode_with(idx, &y)
                } else {
                    y
                }
            }
            SnnLayer::MaxPool { spec } => max_pool2d(cur, spec).map_err(snn_nn::NnError::from)?.0,
            SnnLayer::AvgPool { spec } => avg_pool2d(cur, spec).map_err(snn_nn::NnError::from)?,
            SnnLayer::Flatten => {
                let n = cur.dims()[0];
                let rest = cur.len() / n.max(1);
                cur.reshape(&[n, rest]).map_err(snn_nn::NnError::from)?
            }
        })
    }

    /// Classification accuracy on a labelled set.
    ///
    /// # Errors
    ///
    /// Propagates geometry errors.
    pub fn accuracy(&self, images: &Tensor, labels: &[usize]) -> Result<f32, ConvertError> {
        let n = images.dims()[0];
        if n == 0 {
            return Ok(0.0);
        }
        let logits = self.reference_forward(images)?;
        let c = logits.dims()[1];
        let mut correct = 0usize;
        for (s, &label) in labels.iter().enumerate() {
            let row = &logits.as_slice()[s * c..(s + 1) * c];
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            if pred == label {
                correct += 1;
            }
        }
        Ok(correct as f32 / n as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{convert, Base2Kernel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_nn::{ActivationLayer, DenseLayer, Flatten, Layer, Relu, Sequential};
    use snn_tensor::Conv2dSpec;

    fn tiny_model(rng: &mut StdRng) -> SnnModel {
        let net = Sequential::new(vec![
            Layer::Conv2d(snn_nn::Conv2dLayer::new(
                Conv2dSpec::new(1, 3, 3, 1, 1),
                rng,
            )),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(3 * 6 * 6, 4, rng)),
        ]);
        convert(&net, Base2Kernel::paper_default(), 24).unwrap()
    }

    #[test]
    fn latency_matches_table2() {
        // 16 weighted layers at T=80: 1360 without early firing, 680 with.
        let kernels = vec![ExpKernel::t2fsnn_default(); 16];
        let model = T2fsnnModel {
            layers: Vec::new(),
            kernels,
            window: 80,
            early_firing: false,
        };
        assert_eq!(model.latency_timesteps(), 1360);
        let mut with_ef = model.clone();
        with_ef.set_early_firing(true);
        assert_eq!(with_ef.latency_timesteps(), 680);
    }

    #[test]
    fn tuning_reduces_coding_error() {
        let mut rng = StdRng::seed_from_u64(7);
        let base = tiny_model(&mut rng);
        // Start from a deliberately bad kernel (tau too large).
        let mut model = T2fsnnModel::new(&base, ExpKernel::new(60.0, 0.0, 1.0), 80);
        let x = snn_tensor::uniform(&[8, 1, 6, 6], 0.0, 1.0, &mut rng);
        let before: Vec<f32> = {
            let acts = model.layer_activations(&x).unwrap();
            model
                .kernels
                .iter()
                .zip(&acts)
                .map(|(k, a)| T2fsnnModel::coding_error(k, a, 80))
                .collect()
        };
        let after = model.tune_kernels(&x).unwrap();
        for (b, a) in before.iter().zip(&after) {
            assert!(a <= b, "tuning must not worsen error: {a} > {b}");
        }
        assert!(after.iter().sum::<f32>() < before.iter().sum::<f32>());
    }

    #[test]
    fn coding_error_zero_on_grid() {
        let k = ExpKernel::t2fsnn_default();
        let grid: Vec<f32> = (0..=80).map(|t| k.decode(t)).collect();
        assert!(T2fsnnModel::coding_error(&k, &grid, 80) < 1e-10);
    }

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(8);
        let base = tiny_model(&mut rng);
        let model = T2fsnnModel::new(&base, ExpKernel::t2fsnn_default(), 80);
        let x = snn_tensor::uniform(&[2, 1, 6, 6], 0.0, 1.0, &mut rng);
        let y = model.reference_forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 4]);
    }
}
