use serde::{Deserialize, Serialize};

/// A monotonically decreasing TTFS threshold/dendrite kernel.
///
/// Encoding maps a membrane voltage to the first timestep at which it
/// crosses the falling threshold; decoding maps that timestep back to a
/// value. `decode(encode(u))` quantizes `u` onto the kernel's grid — the
/// data-representation change whose error CAT minimizes.
pub trait TtfsKernel {
    /// Kernel value at (possibly fractional) timestep `t`.
    fn value(&self, t: f32) -> f32;

    /// Base threshold θ₀ (kernel value the encoder starts from).
    fn theta0(&self) -> f32;

    /// First integer timestep `k ∈ [0, window]` with `u ≥ value(k)`, or
    /// `None` if the neuron never fires within the window (u too small or
    /// non-positive).
    fn encode(&self, u: f32, window: u32) -> Option<u32>;

    /// Value represented by a spike at timestep `k`.
    fn decode(&self, k: u32) -> f32;
}

/// The paper's base-2 TTFS kernel (eq. 9): `κ(t) = θ₀ · 2^(−t/τ)`.
///
/// A single `(τ, θ₀)` pair is shared by *all* layers — that is what lets the
/// processor replace per-layer kernel SRAMs with one LUT (Fig. 6, step I) —
/// and `τ` is constrained to a power of two (eq. 18) so spike times satisfy
/// the log-domain multiply condition (eq. 16).
///
/// # Example
///
/// ```
/// use ttfs_core::{Base2Kernel, TtfsKernel};
///
/// let k = Base2Kernel::paper_default(); // τ = 4, θ₀ = 1
/// assert_eq!(k.encode(1.0, 24), Some(0));
/// let t = k.encode(0.5, 24).unwrap();
/// assert_eq!(t, 4); // 2^(−4/4) = 0.5
/// assert!((k.decode(t) - 0.5).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Base2Kernel {
    tau: f32,
    theta0: f32,
}

impl Base2Kernel {
    /// Creates a base-2 kernel.
    ///
    /// # Panics
    ///
    /// Panics if `tau` or `theta0` is not strictly positive.
    pub fn new(tau: f32, theta0: f32) -> Self {
        assert!(tau > 0.0, "tau must be positive");
        assert!(theta0 > 0.0, "theta0 must be positive");
        Self { tau, theta0 }
    }

    /// The hardware configuration chosen by the paper: `τ = 4`, `θ₀ = 1`
    /// (used with window `T = 24`).
    pub fn paper_default() -> Self {
        Self::new(4.0, 1.0)
    }

    /// Time constant τ.
    pub fn tau(&self) -> f32 {
        self.tau
    }

    /// Whether τ satisfies the log-domain constraint of eq. 18
    /// (`log₂ τ = 2^z` for integer `z` — i.e. τ ∈ {2, 4, 16, 256, …}, and
    /// also τ = 1 for z → −∞ degenerate integer-time coding).
    pub fn satisfies_log_constraint(&self) -> bool {
        let l = self.tau.log2();
        if l <= 0.0 {
            return self.tau == 1.0;
        }
        // l must itself be a power of two (1, 2, 4, ...) per eq. 18.
        let z = l.log2();
        (z - z.round()).abs() < 1e-6 && z.round() >= 0.0
    }
}

impl TtfsKernel for Base2Kernel {
    fn value(&self, t: f32) -> f32 {
        self.theta0 * (-t / self.tau).exp2()
    }

    fn theta0(&self) -> f32 {
        self.theta0
    }

    fn encode(&self, u: f32, window: u32) -> Option<u32> {
        if u <= 0.0 {
            return None;
        }
        if u >= self.theta0 {
            return Some(0);
        }
        // The 1e-4 slack keeps values that sit exactly on the kernel grid
        // (decode outputs) from being pushed one timestep late by f32 log
        // rounding — hardware compares exact fixed-point values instead.
        let k = (-self.tau * (u / self.theta0).log2() - 1e-4).ceil();
        if k <= window as f32 {
            Some(k.max(0.0) as u32)
        } else {
            None
        }
    }

    fn decode(&self, k: u32) -> f32 {
        self.value(k as f32)
    }
}

/// The T2FSNN baseline kernel (eq. 5): `ε(t) = θ₀ · e^(−(t−t_d)/τ)` with
/// per-layer delay `t_d` and time constant `τ` — the reconfigurability that
/// costs hardware (per-layer kernel SRAM) and that CAT removes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExpKernel {
    tau: f32,
    t_d: f32,
    theta0: f32,
}

impl ExpKernel {
    /// Creates a base-e kernel.
    ///
    /// # Panics
    ///
    /// Panics if `tau` or `theta0` is not strictly positive.
    pub fn new(tau: f32, t_d: f32, theta0: f32) -> Self {
        assert!(tau > 0.0, "tau must be positive");
        assert!(theta0 > 0.0, "theta0 must be positive");
        Self { tau, t_d, theta0 }
    }

    /// The T2FSNN configuration from Table 2: `τ = 20`, `t_d = 0`, `θ₀ = 1`
    /// (used with window `T = 80`).
    pub fn t2fsnn_default() -> Self {
        Self::new(20.0, 0.0, 1.0)
    }

    /// Time constant τ.
    pub fn tau(&self) -> f32 {
        self.tau
    }

    /// Delay time t_d.
    pub fn t_d(&self) -> f32 {
        self.t_d
    }

    /// Returns a copy with different `(τ, t_d)` — the knobs T2FSNN's
    /// post-conversion optimization tunes per layer.
    pub fn with_params(&self, tau: f32, t_d: f32) -> Self {
        Self::new(tau, t_d, self.theta0)
    }
}

impl TtfsKernel for ExpKernel {
    fn value(&self, t: f32) -> f32 {
        self.theta0 * (-(t - self.t_d) / self.tau).exp()
    }

    fn theta0(&self) -> f32 {
        self.theta0
    }

    fn encode(&self, u: f32, window: u32) -> Option<u32> {
        if u <= 0.0 {
            return None;
        }
        // First integer k >= 0 with u >= theta0 * exp(-(k - t_d)/tau):
        // k >= t_d - tau * ln(u/theta0).
        // Same grid-rounding slack as the base-2 kernel.
        let k = (self.t_d - self.tau * (u / self.theta0).ln() - 1e-4)
            .ceil()
            .max(0.0);
        if k <= window as f32 {
            Some(k as u32)
        } else {
            None
        }
    }

    fn decode(&self, k: u32) -> f32 {
        self.value(k as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base2_value_halves_every_tau() {
        let k = Base2Kernel::new(4.0, 1.0);
        assert!((k.value(0.0) - 1.0).abs() < 1e-6);
        assert!((k.value(4.0) - 0.5).abs() < 1e-6);
        assert!((k.value(8.0) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn base2_encode_decode_roundtrip_on_grid() {
        let k = Base2Kernel::paper_default();
        for t in 0..=24u32 {
            let v = k.decode(t);
            assert_eq!(k.encode(v, 24), Some(t), "grid point {t}");
        }
    }

    #[test]
    fn base2_encode_is_monotone() {
        let k = Base2Kernel::paper_default();
        let mut last = u32::MAX;
        for i in 1..100 {
            let u = i as f32 / 100.0;
            if let Some(t) = k.encode(u, 24) {
                assert!(t <= last, "larger u must fire no later");
                last = t;
            }
        }
    }

    #[test]
    fn base2_out_of_range() {
        let k = Base2Kernel::paper_default();
        assert_eq!(k.encode(0.0, 24), None);
        assert_eq!(k.encode(-1.0, 24), None);
        // Below kappa(24) = 2^-6 ~ 0.0156
        assert_eq!(k.encode(0.01, 24), None);
        assert_eq!(k.encode(2.0, 24), Some(0)); // saturates at theta0
    }

    #[test]
    fn base2_decode_never_exceeds_input() {
        // decode(encode(u)) <= u: the threshold crossing happens at or below u.
        let k = Base2Kernel::paper_default();
        for i in 2..100 {
            let u = i as f32 / 100.0;
            if let Some(t) = k.encode(u, 24) {
                assert!(k.decode(t) <= u + 1e-6, "u={u}");
            }
        }
    }

    #[test]
    fn log_constraint_per_eq18() {
        assert!(Base2Kernel::new(2.0, 1.0).satisfies_log_constraint()); // log2=1=2^0
        assert!(Base2Kernel::new(4.0, 1.0).satisfies_log_constraint()); // log2=2=2^1
        assert!(Base2Kernel::new(16.0, 1.0).satisfies_log_constraint()); // log2=4=2^2
        assert!(!Base2Kernel::new(8.0, 1.0).satisfies_log_constraint()); // log2=3
        assert!(!Base2Kernel::new(3.0, 1.0).satisfies_log_constraint());
    }

    #[test]
    fn exp_kernel_delay_shifts_threshold() {
        let k = ExpKernel::new(20.0, 5.0, 1.0);
        assert!((k.value(5.0) - 1.0).abs() < 1e-6);
        assert!(k.value(0.0) > 1.0); // before the delay the threshold is higher
    }

    #[test]
    fn exp_encode_decode_roundtrip_on_grid() {
        let k = ExpKernel::t2fsnn_default();
        for t in 0..=80u32 {
            let v = k.decode(t);
            let enc = k.encode(v, 80).unwrap();
            assert_eq!(enc, t, "grid point {t}");
        }
    }

    #[test]
    fn exp_encode_respects_window() {
        let k = ExpKernel::t2fsnn_default();
        assert_eq!(k.encode(1e-9, 80), None);
        assert_eq!(k.encode(1.0, 80), Some(0));
    }

    #[test]
    fn base2_and_exp_agree_when_bases_match() {
        // kappa with tau=4 equals epsilon with tau = 4/ln2, t_d = 0.
        let b2 = Base2Kernel::new(4.0, 1.0);
        let ex = ExpKernel::new(4.0 / std::f32::consts::LN_2, 0.0, 1.0);
        for t in 0..=24 {
            assert!((b2.value(t as f32) - ex.value(t as f32)).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "tau must be positive")]
    fn rejects_nonpositive_tau() {
        let _ = Base2Kernel::new(0.0, 1.0);
    }
}
