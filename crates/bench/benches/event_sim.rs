//! Event-driven SNN execution vs the analytic reference forward pass — the
//! conversion-equivalence machinery behind Table 1's zero-loss row.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_nn::{
    ActivationLayer, Conv2dLayer, DenseLayer, Flatten, Layer, MaxPool2dLayer, Relu, Sequential,
};
use snn_sim::EventSnn;
use snn_tensor::Conv2dSpec;
use ttfs_core::{convert, Base2Kernel};

fn bench_event_sim(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let net = Sequential::new(vec![
        Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(3, 8, 3, 1, 1), &mut rng)),
        Layer::Activation(ActivationLayer::new(Box::new(Relu))),
        Layer::MaxPool2d(MaxPool2dLayer::new(2, 2)),
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(8 * 4 * 4, 10, &mut rng)),
    ]);
    let model = convert(&net, Base2Kernel::paper_default(), 24).expect("conversion");
    let sim = EventSnn::new(&model);
    let x = snn_tensor::uniform(&[4, 3, 8, 8], 0.0, 1.0, &mut rng);

    let mut group = c.benchmark_group("event_sim");
    group.bench_function("event_run_batch4", |b| {
        b.iter(|| sim.run(black_box(&x)).expect("run"))
    });
    group.bench_function("reference_forward_batch4", |b| {
        b.iter(|| model.reference_forward(black_box(&x)).expect("forward"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(900)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_event_sim
}
criterion_main!(benches);
