//! Training-substrate micro-benchmarks: GEMM, im2col convolution and one
//! SGD training step — the cost drivers of every Table 1/2 and Fig. 3/4 run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_nn::{
    cross_entropy, ActivationLayer, Conv2dLayer, DenseLayer, Flatten, Layer, Relu, Sequential, Sgd,
};
use snn_tensor::{conv2d, gemm, kaiming_normal, Conv2dSpec, Transpose};

fn bench_substrate(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let a = kaiming_normal(&[64, 64], 64, &mut rng);
    let b = kaiming_normal(&[64, 64], 64, &mut rng);
    let img = kaiming_normal(&[4, 3, 16, 16], 3 * 256, &mut rng);
    let w = kaiming_normal(&[16, 3, 3, 3], 27, &mut rng);
    let spec = Conv2dSpec::new(3, 16, 3, 1, 1);

    let mut group = c.benchmark_group("substrate");
    group.bench_function("gemm_64x64", |bch| {
        bch.iter(|| gemm(black_box(&a), Transpose::No, black_box(&b), Transpose::No))
    });
    group.bench_function("conv2d_4x3x16x16", |bch| {
        bch.iter(|| conv2d(black_box(&img), black_box(&w), None, &spec))
    });

    let mut net = Sequential::new(vec![
        Layer::Conv2d(Conv2dLayer::new(spec, &mut rng)),
        Layer::Activation(ActivationLayer::new(Box::new(Relu))),
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(16 * 16 * 16, 10, &mut rng)),
    ]);
    let mut opt = Sgd::new(0.01, 0.9, 5e-4);
    let labels = [0usize, 1, 2, 3];
    group.bench_function("sgd_step_small_cnn", |bch| {
        bch.iter(|| {
            net.zero_grad();
            let logits = net.forward(black_box(&img), true).expect("forward");
            let out = cross_entropy(&logits, &labels).expect("loss");
            net.backward(&out.grad_logits).expect("backward");
            opt.step(&mut net);
            out.loss
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(900)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_substrate
}
criterion_main!(benches);
