//! Functional hardware units: the spike encoder (threshold LUT + priority
//! encoder) and the minfind merge-sorter — the §4 pipeline stages.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use snn_hw::{MinFindUnit, SpikeEncoder, ThresholdLut};

fn bench_units(c: &mut Criterion) {
    let encoder = SpikeEncoder::new(ThresholdLut::base2(4.0, 1.0, 24));
    // A 128-entry Vmem buffer like the real encoder's.
    let vmem: Vec<f32> = (0..128)
        .map(|i| ((i * 37 % 101) as f32 / 101.0) * 1.2 - 0.1)
        .collect();

    let minfind = MinFindUnit::new(16);
    let streams: Vec<Vec<(usize, u32)>> = (0..16)
        .map(|s| {
            (0..64)
                .map(|i| (s * 64 + i, ((i * 7 + s) % 25) as u32))
                .collect::<Vec<_>>()
        })
        .map(|mut v: Vec<(usize, u32)>| {
            v.sort_by_key(|e| e.1);
            v
        })
        .collect();

    let mut group = c.benchmark_group("hw_units");
    group.bench_function("spike_encoder_128_vmem", |b| {
        b.iter(|| encoder.encode(black_box(&vmem)))
    });
    group.bench_function("minfind_merge_1k_spikes", |b| {
        b.iter(|| minfind.merge(black_box(&streams)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(700)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_units
}
criterion_main!(benches);
