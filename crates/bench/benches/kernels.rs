//! Micro-benchmarks of the TTFS kernels and CAT activations (the Fig. 2
//! machinery): encode/decode and the φ functions that run once per neuron
//! per layer during training and conversion.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use snn_nn::ActivationFn;
use ttfs_core::{Base2Kernel, ExpKernel, PhiClip, PhiTtfs, TtfsKernel};

fn bench_kernels(c: &mut Criterion) {
    let base2 = Base2Kernel::paper_default();
    let expk = ExpKernel::t2fsnn_default();
    let phi = PhiTtfs::paper_default();
    let clip = PhiClip::new(1.0);
    let inputs: Vec<f32> = (0..1024).map(|i| i as f32 / 900.0).collect();

    let mut group = c.benchmark_group("kernels");
    group.bench_function("base2_encode_1k", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &x in &inputs {
                if let Some(t) = base2.encode(black_box(x), 24) {
                    acc = acc.wrapping_add(t);
                }
            }
            acc
        })
    });
    group.bench_function("exp_encode_1k", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &x in &inputs {
                if let Some(t) = expk.encode(black_box(x), 80) {
                    acc = acc.wrapping_add(t);
                }
            }
            acc
        })
    });
    group.bench_function("base2_decode_window", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for t in 0..=24u32 {
                acc += base2.decode(black_box(t));
            }
            acc
        })
    });
    group.bench_function("phi_ttfs_1k", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for &x in &inputs {
                acc += phi.value(black_box(x));
            }
            acc
        })
    });
    group.bench_function("phi_clip_1k", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for &x in &inputs {
                acc += clip.value(black_box(x));
            }
            acc
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(700)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_kernels
}
criterion_main!(benches);
