//! Log-domain (LUT + shift) vs multiplier PE datapath — the arithmetic
//! substitution behind Fig. 6's "I+II" savings and Table 4's energy column.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use snn_logquant::{LinearPe, LogBase, LogCode, LogPe, LogQuantizer};

fn bench_pe(c: &mut Criterion) {
    let q = LogQuantizer::with_fsr(LogBase::inv_sqrt2(), 5, 0.0).expect("quantizer");
    let pe = LogPe::for_kernel(4.0, LogBase::inv_sqrt2())
        .expect("paper kernel satisfies eq. 18")
        .with_fsr_log2(0.0);
    let linear = LinearPe::new();

    let codes: Vec<LogCode> = (0..256)
        .map(|i| q.code(((i as f32 / 128.0) - 1.0) * 0.9 + 0.01))
        .collect();
    let weights: Vec<f32> = codes.iter().map(|&c| q.decode(c)).collect();

    let mut group = c.benchmark_group("pe_datapath");
    group.bench_function("log_pe_256_sops", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for (i, &code) in codes.iter().enumerate() {
                acc += pe
                    .multiply(black_box(code), (i % 25) as u32)
                    .expect("in range");
            }
            acc
        })
    });
    group.bench_function("linear_pe_256_sops", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for (i, &w) in weights.iter().enumerate() {
                acc += linear.multiply(black_box(w), 4.0, (i % 25) as u32);
            }
            acc
        })
    });
    group.bench_function("quantize_256_weights", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..256 {
                acc += q.quantize(black_box((i as f32 / 128.0) - 1.0));
            }
            acc
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(700)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_pe
}
criterion_main!(benches);
