//! Whole-network processor modeling — the Table 4 and Fig. 6 generators.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use snn_hw::{
    vgg16_geometry, AreaPowerModel, Processor, ProcessorConfig, TpuModel, WorkloadProfile,
};

fn bench_processor(c: &mut Criterion) {
    let processor = Processor::new(ProcessorConfig::proposed());
    let layers_cifar = vgg16_geometry(32, 32, 10);
    let layers_tin = vgg16_geometry(64, 64, 200);
    let profile = WorkloadProfile::paper_default();
    let tpu = TpuModel::redesigned_16x16();
    let area_power = AreaPowerModel::cmos28();

    let mut group = c.benchmark_group("processor_model");
    group.bench_function("snn_vgg16_cifar", |b| {
        b.iter(|| processor.run_network(black_box(&layers_cifar), &profile))
    });
    group.bench_function("snn_vgg16_tiny_imagenet", |b| {
        b.iter(|| processor.run_network(black_box(&layers_tin), &profile))
    });
    group.bench_function("tpu_vgg16_cifar", |b| {
        b.iter(|| tpu.run_network(black_box(&layers_cifar)))
    });
    group.bench_function("fig6_cost_model", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for config in [
                ProcessorConfig::baseline(),
                ProcessorConfig::with_cat(),
                ProcessorConfig::proposed(),
            ] {
                acc += area_power.area(&config).total() + area_power.power(&config).total();
            }
            acc
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(700)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_processor
}
criterion_main!(benches);
