//! Runtime throughput benchmark: single-thread reference `EventSnn` versus
//! the `snn-runtime` CSR engine — sample-at-a-time (`csr_single`, one
//! lane), edge-major batched (`batched`, default lane count), behind the
//! multi-threaded closed batch inference server, and behind the streaming
//! deadline batcher under a closed-loop load generator — on a batched
//! VGG-16-geometry workload (the paper's 13 conv + 3 dense stack,
//! width-scaled to a CI-sized budget).
//!
//! Emits `BENCH_runtime.json` with images/sec, per-request p50/p99 latency
//! (closed path), streaming end-to-end latency percentiles with the
//! queue-wait/execution split, batch-occupancy histogram and shed counts,
//! the compiled CSR memory footprint before/after conv pattern
//! deduplication (`csr_memory`), the quantized serving path (`quant`:
//! packed 5-bit log-code throughput, code bytes vs the f32 weight copy,
//! bit-exactness vs the event simulator over quantized weights, top-1
//! agreement vs the f32 path, shift-add error bounds, quantized-workload
//! energy), the HTTP gateway smoke (`gateway`: a loopback `snn-gateway`
//! instance driven by the std-only closed-loop HTTP load generator with
//! random per-request deadlines/priorities, plus a forced `max_pending=1`
//! sub-run that must shed with 429s), logits-equivalence versus
//! `SnnModel::reference_forward`, the tracing cost model (`observability`:
//! interleaved best-of-N engine runs with spans on vs off, the
//! disabled-collector and fully-traced streaming configurations, span
//! volume and collector drops), the seeded fault-injection storms
//! (`faults`: chaos seeds driven through the full HTTP path with backend
//! panics / slowdowns / connection resets armed, the circuit-breaker
//! open-and-recover scenario, a torn artifact write that must leave the
//! previous version loadable, and the disabled-injector overhead guard),
//! the live-telemetry guarantees (`telemetry`: interleaved
//! telemetry-on/off gateway throughput, `/v1/stats` windowed-vs-cumulative
//! p99 agreement, per-model energy attribution, the `/dashboard` page and
//! the per-scrape cost), and the hardware energy report driven by the fast
//! path's event counts.
//!
//! Run: `cargo run -p snn-bench --bin runtime_throughput --release`
//! Scale with `SNN_BENCH_SCALE=quick|default|full`. Pass
//! `-- --trace-out trace.json` to export the fully-traced streaming run as
//! Chrome trace-event JSON (load it at `chrome://tracing` or in Perfetto).

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use snn_bench::Scale;
use snn_gateway::{
    client::HttpClient, run_closed_loop, run_closed_loop_any, Gateway, GatewayConfig,
    GatewayMetrics, LoadGenConfig, LoadReport,
};
use snn_hw::{Processor, ProcessorConfig};
use snn_nn::models::vgg16_scaled;
use snn_nn::{ActivationLayer, DenseLayer, Flatten, Layer, Relu, Sequential};
use snn_runtime::{
    energy, quantize_model, BackendHint, BrownoutConfig, CsrEngine, DecodeMode, FaultConfig,
    FaultCounts, FaultInjector, InferenceBackend, InferenceServer, ModelArtifact, ModelRegistry,
    QuantConfig, QuantEngine, RegistryConfig, RegistryError, RegistryMetrics, ServerConfig,
    StreamingConfig, StreamingMetrics, StreamingServer, SubmitOptions,
};
use snn_sim::EventSnn;
use snn_tensor::Tensor;
use snn_trace::{push_context, TraceCollector, TraceTarget};
use ttfs_core::{convert, normalize_output_layer, Base2Kernel};

#[derive(Debug, Serialize)]
struct BackendResult {
    images_per_sec: f64,
    wall_ms: f64,
}

#[derive(Debug, Serialize)]
struct BatchedResult {
    /// Samples integrated together as lanes of one edge-major traversal
    /// (the engine's cache-budgeted default).
    max_lanes: usize,
    images_per_sec: f64,
    wall_ms: f64,
    /// Batched versus the one-lane walk of the same engine.
    speedup_vs_csr_single: f64,
    /// Streamed logits bit-identical to the one-lane walk's.
    matches_csr_single: bool,
}

#[derive(Debug, Serialize)]
struct CsrMemoryResult {
    /// Edges the integration loop traverses (flat-equivalent count).
    logical_edges: usize,
    /// Edges physically stored after conv pattern deduplication.
    stored_edges: usize,
    /// Bytes of all synapse storage (patterns, offsets, row maps).
    stored_bytes: usize,
    /// Bytes of the stored f32 weight payloads alone (compare with
    /// `quant.code_bytes`).
    weight_bytes: usize,
    /// Bytes a flat per-pixel CSR of the same model would occupy.
    flat_bytes: usize,
    /// Conv-only edge counts (the deduplicated stages).
    conv_logical_edges: usize,
    conv_stored_edges: usize,
    /// Canonical (channel, border-class) patterns across conv stages.
    patterns: usize,
    /// conv_logical_edges / conv_stored_edges.
    conv_dedup_edge_ratio: f64,
    /// flat_bytes / stored_bytes.
    bytes_dedup_ratio: f64,
}

#[derive(Debug, Serialize)]
struct PooledResult {
    images_per_sec: f64,
    wall_ms: f64,
    requests: u64,
    latency_p50_us: f64,
    latency_p99_us: f64,
    latency_mean_us: f64,
}

#[derive(Debug, Serialize)]
struct StreamingResult {
    /// Closed-loop clients (each submits, waits, submits again).
    clients: usize,
    /// Most requests any one client issued (clients owning fewer images
    /// when `clients` does not divide `batch` issue one round less).
    requests_per_client: usize,
    /// Batcher count-flush threshold.
    max_batch: usize,
    /// Batcher deadline, microseconds.
    max_delay_us: u64,
    /// Streamed logits bit-identical to the single-thread CSR rows.
    matches_batched: bool,
    /// Full streaming metrics (e2e/queue-wait/exec percentiles,
    /// queue-wait share, batch-occupancy histogram).
    metrics: StreamingMetrics,
}

#[derive(Debug, Serialize)]
struct GatewayBackpressureResult {
    /// The forced backpressure bound (1: at most one unresolved request).
    max_pending: usize,
    /// Wire-level outcome of the overload run.
    load: LoadReport,
    /// 429s were observed (CI-enforced: sheds must reach the wire).
    saw_429: bool,
    /// Every 200 in the overload run carried bit-correct logits
    /// (CI-enforced: shedding must not corrupt in-flight responses).
    ok_match: bool,
}

#[derive(Debug, Serialize)]
struct GatewayResult {
    /// Closed-loop HTTP client threads.
    clients: usize,
    /// Re-submissions of the sample set per client.
    passes: usize,
    /// Client-side view: status counts, throughput, latency percentiles.
    load: LoadReport,
    /// Every 200 response's logits were bit-identical to the single-thread
    /// CSR rows (must be `true`; CI-enforced).
    matches_batched: bool,
    /// Requests the gateway's HTTP parser rejected (must be 0 under the
    /// well-formed load generator; CI-enforced).
    parse_errors: u64,
    /// Server-side gateway counters and per-route latency.
    metrics: GatewayMetrics,
    /// The gateway's streaming server metrics (includes `shed_requests`).
    streaming: StreamingMetrics,
    /// The forced `max_pending = 1` overload sub-run.
    backpressure: GatewayBackpressureResult,
}

#[derive(Debug, Serialize)]
struct RegistrySwapResult {
    /// Closed-loop run on `/v1/models/alpha/infer` with a version swap
    /// fired mid-run; each 200 is accepted iff its logits bit-match one
    /// version's reference rows.
    load: LoadReport,
    /// Every request answered 200 and matched exactly one version — no
    /// dropped tickets, no blended logits (must be `true`; CI-enforced).
    ok_match: bool,
    /// Both the old and the new version's logits were observed, proving
    /// the swap actually landed mid-run.
    saw_both_versions: bool,
    /// The swapped-to version as reported by the `/swap` response body.
    swapped_to: String,
    /// p99 latency of the no-swap baseline run on the same route, µs.
    baseline_p99_us: f64,
    /// `(swap-run p99 − baseline p99) / baseline p99`: the latency cost a
    /// live swap imposes on concurrent traffic.
    p99_delta_frac: f64,
}

#[derive(Debug, Serialize)]
struct RegistryResult {
    /// Artifacts on disk in the bench model dir.
    models: usize,
    /// Total serialized artifact bytes.
    artifact_bytes: u64,
    /// Wall time the first `get_or_load` spent decoding the artifact, ms
    /// (must be > 0; CI-enforced).
    cold_load_ms: f64,
    /// Backend compile time paid by the same cold start, ms.
    cold_compile_ms: f64,
    /// Resident lookups timed for the warm-hit cost.
    warm_lookups: u64,
    /// Mean warm `get_or_load` cost, nanoseconds — the per-request
    /// registry overhead once a model is resident.
    warm_lookup_mean_ns: f64,
    /// Closed-loop load on `/v1/models/alpha/infer` (active version).
    alpha: LoadReport,
    /// Alpha run: all 200, logits bit-exact (CI-enforced).
    alpha_ok_match: bool,
    /// Closed-loop load on `/v1/models/beta/infer` — a model with
    /// *different* input dims than the gateway's default route.
    beta: LoadReport,
    /// Beta run: all 200, logits bit-exact (CI-enforced).
    beta_ok_match: bool,
    /// The atomic hot-swap-under-load sub-run.
    swap: RegistrySwapResult,
    /// Server-side registry counters (cold/warm/coalesced/evictions).
    metrics: RegistryMetrics,
}

#[derive(Debug, Serialize)]
struct EnergySummary {
    energy_per_image_uj: f64,
    model_fps: f64,
    total_sops: u64,
}

#[derive(Debug, Serialize)]
struct QuantResult {
    /// Code width (sign included) and log base label.
    bits: u8,
    base: String,
    /// Batched quantized throughput (engine default lane count).
    images_per_sec: f64,
    wall_ms: f64,
    /// Stored weight payload: packed codes vs the f32 repacked copy.
    code_bytes: usize,
    f32_weight_bytes: usize,
    /// `f32_weight_bytes / code_bytes` (≥ 4 by construction; CI-enforced).
    weight_bytes_ratio: f64,
    /// Bit-exactness: quantized serving vs the reference event simulator
    /// over `quantize_tensor`'d weights (must be 0.0; CI-enforced).
    max_abs_logit_diff_vs_quantized_event: f32,
    /// Event statistics identical to that quantized reference run.
    stats_match_quantized_event: bool,
    /// Accuracy cost of quantization vs the f32 serving path.
    top1_agreement_vs_f32: f64,
    max_abs_logit_diff_vs_f32: f32,
    /// Shift-add (LogPe Q16 mantissa) datapath diagnostics.
    shift_add_available: bool,
    mantissa_error_bound: f32,
    shift_add_max_rel_error: f32,
    max_abs_logit_diff_shift_add_vs_lut: f32,
    /// Hardware model on the measured quantized workload (proposed
    /// log-PE processor configuration).
    energy: EnergySummary,
}

#[derive(Debug, Serialize)]
struct ObservabilityResult {
    /// Interleaved timing rounds (each round times baseline then traced;
    /// best-of-N is reported, which cancels scheduler noise).
    rounds: usize,
    /// Engine-level `run_batch` with no ambient trace context — the
    /// tracing-off hot path (one thread-local read per instrumentation
    /// point).
    engine_baseline_images_per_sec: f64,
    /// The same engine under an active single-target trace context, every
    /// chunk/encode/stage span recorded.
    engine_traced_images_per_sec: f64,
    /// `(baseline - traced) / baseline`, best-of-N (CI-enforced ≤ 5%).
    tracing_on_overhead_frac: f64,
    /// Traced engine logits bit-identical to the untraced run
    /// (CI-enforced).
    logits_match_with_tracing: bool,
    /// Closed-loop streaming throughput with a *disabled* collector
    /// attached — the realistic tracing-off serving configuration.
    streaming_off_images_per_sec: f64,
    /// Relative delta vs the main (untraced) streaming run; noise-gated in
    /// CI rather than zero-asserted, since closed-loop throughput is
    /// scheduler-sensitive.
    streaming_off_delta_frac: f64,
    /// Closed-loop streaming with every submission traced end to end.
    streaming_on_images_per_sec: f64,
    /// Traced streaming logits bit-identical to the single-thread CSR rows
    /// (CI-enforced).
    streaming_on_matches: bool,
    /// Spans the traced streaming run recorded / evicted (drops are
    /// CI-enforced to 0 at the default collector capacity).
    spans_recorded: u64,
    spans_dropped: u64,
    /// Distinct threads (chrome tracks) that recorded spans.
    trace_tracks: usize,
    /// Size of the Chrome trace-event JSON export; the file itself is
    /// written when `--trace-out <path>` is passed.
    chrome_trace_bytes: usize,
    /// Where the export landed ("" when `--trace-out` was not given).
    chrome_trace_path: String,
}

#[derive(Debug, Serialize)]
struct TelemetryResult {
    /// `/v1/stats` parsed as JSON, carried `schema_version` 1 and a
    /// `model=default` series (CI-enforced).
    stats_parse_ok: bool,
    schema_version: u64,
    /// The `model=default` windowed e2e p99 over the 300 s window, µs.
    windowed_p99_us: f64,
    /// The cumulative recorder's e2e p99 from the same stack, µs.
    cumulative_p99_us: f64,
    /// `windowed / cumulative`. The windowed quantile reports its
    /// log-linear bin's upper edge, so it may overshoot the cumulative
    /// figure by ≤ 25% + 1 µs but never undershoot (CI-enforced).
    p99_agreement_ratio: f64,
    p99_within_tolerance: bool,
    /// Modeled per-inference energy from the windowed per-model series,
    /// µJ (CI-enforced > 0).
    energy_uj_per_inference: f64,
    /// Computed multi-window SLO state for the default model.
    slo_state: String,
    /// Fast-window (1 m) deadline-miss ratio for the default model.
    deadline_miss_ratio_fast: f64,
    /// `GET /dashboard` served a non-empty self-contained HTML page
    /// (CI-enforced).
    dashboard_ok: bool,
    dashboard_bytes: usize,
    /// Mean wall cost of one `/v1/stats` scrape over `scrapes` timed
    /// GETs, µs — what a 1–2 s dashboard poll costs the gateway.
    scrapes: u64,
    scrape_mean_us: f64,
    stats_body_bytes: usize,
    /// Interleaved best-of-N closed-loop HTTP throughput with telemetry
    /// on vs off (fresh identical stacks, same backend Arc).
    rounds: usize,
    on_requests_per_sec: f64,
    off_requests_per_sec: f64,
    /// `(off − on) / off`, best-of-N; noise-gated (≤ 5%) in CI rather
    /// than zero-asserted, since closed-loop HTTP throughput is
    /// scheduler-sensitive.
    telemetry_overhead_frac: f64,
    /// Every 200 in every round was bit-exact against the single-thread
    /// CSR rows, on both sides (CI-enforced: telemetry must not perturb
    /// logits).
    on_ok_match: bool,
    off_ok_match: bool,
}

#[derive(Debug, Serialize)]
struct LoggingResult {
    /// Interleaved best-of-N closed-loop HTTP throughput with the
    /// structured-log flight recorder on (`logging: true`, the default,
    /// plus an incidents dir) vs `logging: false` (fresh identical
    /// stacks, same backend Arc).
    rounds: usize,
    on_requests_per_sec: f64,
    off_requests_per_sec: f64,
    /// `(off − on) / off`, best-of-N; noise-gated (≤ 5%) in CI rather
    /// than zero-asserted, same protocol as the tracing/telemetry gates.
    logging_overhead_frac: f64,
    /// Every 200 in every round was bit-exact on both sides
    /// (CI-enforced: logging must not perturb logits).
    on_ok_match: bool,
    off_ok_match: bool,
    /// Flight-recorder accounting on the logging-on stack after the
    /// rounds: the closed loop's access log must leave events behind,
    /// and at quick scale the ring must not overflow (CI-enforced).
    events_recorded: u64,
    events_dropped: u64,
    /// `GET /v1/logs?level=info` parsed and returned ≥ 1 event
    /// (CI-enforced).
    logs_route_ok: bool,
    /// An explicit incident written on the live stack, then fetched
    /// back over `GET /v1/incidents/<id>`: kind echoed, embedded
    /// `/v1/stats` snapshot parsed (CI-enforced).
    incident_id: String,
    incidents_written: u64,
    incident_round_trip_ok: bool,
}

#[derive(Debug, Serialize)]
struct FaultsResult {
    /// Chaos seeds driven through the full HTTP path with the injector
    /// armed (backend panics, slowdowns, connection resets, brownout).
    seeds: Vec<u64>,
    /// Aggregate wire-visible outcomes across every storm seed. These
    /// five buckets partition `storm_requests` exactly: a request that
    /// fell into none of them would have hung a closed-loop client.
    storm_requests: u64,
    storm_ok_200: u64,
    storm_shed_429: u64,
    storm_unavailable_503: u64,
    storm_other_status: u64,
    storm_transport_errors: u64,
    /// `200` responses whose logits did not bit-match the reference
    /// (CI-gated to 0: faults may fail requests, never corrupt them).
    storm_mismatches: u64,
    /// Every issued request resolved to exactly one typed outcome.
    all_resolved: bool,
    /// Faults actually fired, summed over every armed segment.
    injected: FaultCounts,
    injected_total: u64,
    /// Blast-radius isolation counters from the storm server: batches
    /// re-run after a panic, and requests quarantined after panicking
    /// solo on the retry path.
    batch_retries: u64,
    quarantined: u64,
    /// Clean closed loop through the *same* gateway/server after
    /// disarming: all `200`, bit-exact — the stack survived the storm.
    post_storm_ok: bool,
    /// Repeated injected compile failures opened the per-model circuit
    /// breaker, an open-state lookup was rejected without a load
    /// attempt, and the half-open probe after "repair" closed it again.
    breaker_opened: bool,
    breaker_recovered: bool,
    breaker_rejections: u64,
    /// An injected torn write failed the save but left the previously
    /// committed artifact bytes loadable (crash-safe save protocol).
    torn_write_survived: bool,
    /// Closed-loop streaming throughput with the injector disarmed, and
    /// its fractional delta versus the main `streaming` section — the
    /// disabled path is one relaxed atomic load, so CI gates the delta
    /// to the run-to-run noise band.
    disabled_images_per_sec: f64,
    disabled_delta_frac: f64,
}

#[derive(Debug, Serialize)]
struct RuntimeBenchReport {
    scale: String,
    geometry: String,
    weighted_layers: usize,
    window: u32,
    batch: usize,
    threads: usize,
    chunk_size: usize,
    csr_edges: usize,
    csr_memory: CsrMemoryResult,
    event_single: BackendResult,
    csr_single: BackendResult,
    batched: BatchedResult,
    csr_pooled: PooledResult,
    streaming: StreamingResult,
    gateway: GatewayResult,
    registry: RegistryResult,
    faults: FaultsResult,
    quant: QuantResult,
    observability: ObservabilityResult,
    telemetry: TelemetryResult,
    logging: LoggingResult,
    speedup_csr_single: f64,
    speedup_batched: f64,
    speedup_csr_pooled: f64,
    max_abs_logit_diff_vs_reference: f32,
    logits_within_1e4: bool,
    stats_match_reference_backend: bool,
    energy_fast_path: EnergySummary,
}

fn main() {
    let scale = Scale::from_env();
    let (width_div, batch) = match scale {
        Scale::Quick => (16usize, 24usize),
        Scale::Default => (8, 64),
        Scale::Full => (4, 128),
    };
    let classes = 10usize;
    let side = 32usize;
    let window = 24u32;

    // Both backends quantize activations onto the TTFS kernel grid each
    // layer, so they agree exactly except when a membrane sum lands within
    // f32-summation-order noise of a threshold grid point and the two
    // accumulation orders encode one timestep apart. The seed is
    // overridable so such quantization-cliff workloads stay reproducible.
    let seed = std::env::var("SNN_BENCH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7u64);
    let mut rng = StdRng::seed_from_u64(seed);
    let net = vgg16_scaled(side, classes, width_div, &mut rng);
    let mut model = convert(&net, Base2Kernel::paper_default(), window).expect("conversion");
    let input_dims = [3usize, side, side];
    let x = snn_tensor::uniform(&[batch, 3, side, side], 0.0, 1.0, &mut rng);
    // Deployment step of the paper's pipeline: scale the readout so logits
    // sit in the fixed-point-friendly unit range (argmax-invariant).
    let calib_len = 8.min(batch);
    let calib = snn_tensor::Tensor::from_vec(
        x.as_slice()[..calib_len * 3 * side * side].to_vec(),
        &[calib_len, 3, side, side],
    )
    .expect("calibration slice");
    normalize_output_layer(&mut model, &calib).expect("output normalization");

    eprintln!(
        "# runtime_throughput: VGG-16/{} geometry @ {side}x{side}, batch {batch}, window {window}",
        width_div
    );

    // One read-only copy of the converted model, shared by every engine
    // and server below.
    let model = Arc::new(model);

    // Reference backend, single thread.
    let event = EventSnn::new(&model);
    let t0 = Instant::now();
    let (event_logits, event_stats) = event.run(&x).expect("event run");
    let event_wall = t0.elapsed();

    // CSR engine over the pattern-deduplicated synapse tables. `csr` keeps
    // the engine's cache-budgeted default lane count (edge-major batched
    // integration); the one-lane clone is the classic sample-at-a-time
    // walk for comparison. Both share the same Arc'd model + compiled CSR.
    let csr =
        Arc::new(CsrEngine::compile_shared(Arc::clone(&model), &input_dims).expect("csr compile"));
    let csr_edges = csr.total_edges();
    let footprint = csr.compiled().footprint();
    let csr_one_lane = csr.as_ref().clone().with_max_lanes(1);
    // One untimed pass per engine first: the freshly compiled tables pay
    // page-in/first-touch and scratch-allocation costs on their first
    // traversal, which would otherwise bias whichever path runs first.
    let _ = csr_one_lane.run_batch(&x).expect("csr warm-up");
    let _ = csr.run_batch(&x).expect("batched warm-up");
    let t0 = Instant::now();
    let (csr_logits, csr_stats) = csr_one_lane.run_batch(&x).expect("csr single run");
    let csr_wall = t0.elapsed();

    // Edge-major batched integration (the engine default).
    let t0 = Instant::now();
    let (batched_logits, batched_stats) = csr.run_batch(&x).expect("batched run");
    let batched_wall = t0.elapsed();
    let batched_matches = batched_logits.as_slice() == csr_logits.as_slice();
    assert!(
        batched_matches && batched_stats == csr_stats,
        "batched path must be bit-identical to the one-lane walk"
    );

    // CSR engine behind the worker pool.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let chunk_size = (batch / (threads * 2)).max(1);
    let server = InferenceServer::new(
        Arc::clone(&csr) as Arc<dyn InferenceBackend>,
        ServerConfig {
            threads,
            chunk_size,
        },
    );
    let report = server.run(&x).expect("pooled run");

    // CSR engine behind the streaming deadline batcher, driven by a
    // closed-loop load generator (each client submits one image, waits for
    // its ticket, then submits the next — classic closed-loop offered
    // load, so concurrency == clients).
    let passes = match scale {
        Scale::Quick => 2usize,
        Scale::Default => 3,
        Scale::Full => 4,
    };
    // More clients than workers, so the batcher sees genuine queueing
    // pressure and forms multi-image batches even on small machines.
    let streaming = closed_loop_streaming(
        Arc::clone(&csr) as Arc<dyn InferenceBackend>,
        &x,
        &csr_logits,
        threads * 4,
        passes,
        chunk_size.max(2),
        Duration::from_millis(2),
        None,
    );
    assert!(
        streaming.matches_batched,
        "streamed logits must equal single-thread CSR logits"
    );

    // Tracing cost at both layers: interleaved best-of-N engine runs under
    // an ambient trace context, plus disabled-collector and fully-traced
    // closed-loop streaming runs. `--trace-out <path>` additionally dumps
    // the traced run as Chrome trace-event JSON.
    let observability = observability_bench(
        &csr,
        Arc::clone(&csr) as Arc<dyn InferenceBackend>,
        &x,
        &csr_logits,
        streaming.metrics.images_per_sec,
        threads * 4,
        passes,
        chunk_size.max(2),
        Duration::from_millis(2),
        trace_out_path(),
    );
    assert!(
        observability.logits_match_with_tracing,
        "tracing must not perturb engine logits"
    );
    assert!(
        observability.streaming_on_matches,
        "traced streaming logits must equal single-thread CSR logits"
    );
    assert_eq!(
        observability.spans_dropped, 0,
        "default collector capacity must hold the bench's span volume"
    );

    // HTTP gateway smoke: the same CSR backend behind a loopback
    // snn-gateway, driven end-to-end by the std-only HTTP load generator
    // (random per-request deadlines/priorities ride the wire into the EDF
    // batcher), plus a forced max_pending=1 overload that must shed 429s.
    let gateway = gateway_smoke(
        Arc::clone(&csr) as Arc<dyn InferenceBackend>,
        &x,
        &csr_logits,
        &input_dims,
        (threads * 2).clamp(2, 8),
        passes,
        chunk_size.max(2),
        Duration::from_millis(2),
        seed,
    );
    assert!(
        gateway.matches_batched,
        "HTTP-served logits must equal single-thread CSR logits"
    );
    assert_eq!(gateway.parse_errors, 0, "load generator speaks clean HTTP");
    assert!(
        gateway.backpressure.saw_429,
        "max_pending=1 must shed 429s on the wire"
    );
    assert!(
        gateway.backpressure.ok_match,
        "shedding must not corrupt in-flight responses"
    );

    // Live telemetry: interleaved telemetry-on/off gateway stacks for the
    // overhead gate, then a scrape of /v1/stats and /dashboard whose
    // windowed per-model figures must agree with the cumulative recorders.
    let telemetry = telemetry_bench(
        Arc::clone(&csr) as Arc<dyn InferenceBackend>,
        &x,
        &csr_logits,
        &input_dims,
        (threads * 2).clamp(2, 8),
        passes,
        chunk_size.max(2),
        Duration::from_millis(2),
        seed,
    );
    assert!(
        telemetry.stats_parse_ok,
        "/v1/stats must parse with schema_version 1 and a model=default series"
    );
    assert!(
        telemetry.dashboard_ok,
        "/dashboard must serve a non-empty self-contained page"
    );
    assert!(
        telemetry.energy_uj_per_inference > 0.0,
        "per-model energy attribution must be positive"
    );
    assert!(
        telemetry.p99_within_tolerance,
        "windowed p99 ({} µs) must agree with the cumulative recorder ({} µs)",
        telemetry.windowed_p99_us, telemetry.cumulative_p99_us
    );
    assert!(
        telemetry.on_ok_match && telemetry.off_ok_match,
        "logits must stay bit-exact with telemetry on and off"
    );

    // Structured logging + flight recorder: interleaved logging-on/off
    // stacks for the overhead gate, then the /v1/logs ring and an
    // explicit incident round-trip through /v1/incidents/<id>.
    let logging = logging_bench(
        Arc::clone(&csr) as Arc<dyn InferenceBackend>,
        &x,
        &csr_logits,
        &input_dims,
        (threads * 2).clamp(2, 8),
        passes,
        chunk_size.max(2),
        Duration::from_millis(2),
        seed,
    );
    assert!(
        logging.on_ok_match && logging.off_ok_match,
        "logits must stay bit-exact with logging on and off"
    );
    assert!(
        logging.events_recorded > 0,
        "the closed loop must leave flight-recorder events behind"
    );
    assert!(
        logging.logs_route_ok,
        "/v1/logs must serve the recorded ring"
    );
    assert!(
        logging.incident_round_trip_ok,
        "an incident must round-trip through /v1/incidents/<id>"
    );
    if matches!(scale, Scale::Quick) {
        assert_eq!(
            logging.events_dropped, 0,
            "quick scale must not overflow the flight ring"
        );
    }

    // Multi-model registry: artifact cold start, warm lookup cost,
    // per-model routing for two geometries through one gateway, and an
    // atomic version swap under closed-loop load.
    let registry_passes = match scale {
        Scale::Quick => 30usize,
        Scale::Default => 60,
        Scale::Full => 100,
    };
    let registry = registry_smoke((threads * 2).clamp(2, 6), registry_passes, seed);
    assert!(registry.cold_load_ms > 0.0, "cold start paid a real load");
    assert!(
        registry.alpha_ok_match && registry.beta_ok_match,
        "both model routes must serve bit-exact logits"
    );
    assert!(
        registry.swap.ok_match,
        "hot swap must not drop or blend a single request"
    );

    // Seeded fault storms: the injector armed over the full HTTP path
    // (panics, slowdowns, resets, brownout sheds), the circuit-breaker
    // open-and-recover scenario, a torn artifact write, and the
    // disabled-injector overhead guard. Disarms before returning, so
    // every later section runs the production fast path.
    let faults = faults_bench(
        Arc::clone(&csr) as Arc<dyn InferenceBackend>,
        &x,
        &csr_logits,
        &input_dims,
        streaming.metrics.images_per_sec,
        (threads * 2).clamp(2, 8),
        threads * 4,
        passes,
        chunk_size.max(2),
        Duration::from_millis(2),
        seed,
    );
    assert!(
        faults.all_resolved,
        "every storm request must resolve to a typed outcome"
    );
    assert_eq!(
        faults.storm_mismatches, 0,
        "storm 200s must stay bit-exact: faults may fail requests, never corrupt them"
    );
    assert!(
        faults.post_storm_ok,
        "the serving stack must come back clean after the storm"
    );
    assert!(
        faults.breaker_opened && faults.breaker_recovered,
        "the circuit breaker must open under repeated failures and recover after repair"
    );
    assert!(
        faults.torn_write_survived,
        "a torn write must leave the previously committed artifact loadable"
    );
    assert!(
        faults.injected_total > 0,
        "the storm must actually fire injected faults"
    );

    // Quantized serving path: packed 5-bit log codes + LUT decode, from
    // the same shared model Arc. Ground truth for bit-exactness is the
    // reference event simulator over per-layer quantize_tensor'd weights.
    let qconfig = QuantConfig::default();
    let quant_engine = QuantEngine::compile_shared(Arc::clone(&model), &input_dims, qconfig)
        .expect("quant compile");
    let (qmodel, _) = quantize_model(&model, qconfig.base, qconfig.bits).expect("quantize model");
    let (qevent_logits, qevent_stats) = EventSnn::new(&qmodel).run(&x).expect("quantized event");
    let _ = quant_engine.run_batch(&x).expect("quant warm-up");
    let t0 = Instant::now();
    let (quant_logits, quant_stats) = quant_engine.run_batch(&x).expect("quant run");
    let quant_wall = t0.elapsed();
    let quant_vs_event = max_abs_diff(&quant_logits, &qevent_logits);
    assert_eq!(
        quant_vs_event, 0.0,
        "quantized serving must be bit-identical to EventSnn over quantized weights"
    );
    // Shift-add (LogPe Q16 mantissa) datapath versus the exact LUT.
    let shift_add = quant_engine
        .clone()
        .with_mode(DecodeMode::ShiftAdd)
        .expect("paper kernel satisfies eq. 18");
    let (sa_logits, _) = shift_add.run_batch(&x).expect("shift-add run");
    let quant_fp = quant_engine.compiled().footprint();

    // Equivalence versus the analytic reference.
    let reference = model.reference_forward(&x).expect("reference forward");
    let max_diff = max_abs_diff(&csr_logits, &reference);
    let pooled_matches_csr = report.logits.as_slice() == csr_logits.as_slice();
    let event_matches_csr = event_logits.as_slice() == csr_logits.as_slice();
    assert!(
        pooled_matches_csr,
        "pooled logits must equal single-thread CSR logits"
    );
    assert!(
        event_matches_csr,
        "CSR logits must equal reference-backend logits"
    );

    // Hardware energy report from the fast path's measured event counts.
    let processor = Processor::new(ProcessorConfig::proposed());
    let hw = energy::energy_report(&processor, &model, &report.stats, &input_dims)
        .expect("energy report");
    let quant_hw = energy::quant_energy_report(&processor, &quant_engine, &quant_stats)
        .expect("quant energy report");

    let per_sec = |n: usize, wall: std::time::Duration| n as f64 / wall.as_secs_f64();
    let out = RuntimeBenchReport {
        scale: format!("{scale:?}"),
        geometry: format!("vgg16/w{width_div} @ {side}x{side}"),
        weighted_layers: model.weighted_layers(),
        window,
        batch,
        threads,
        chunk_size,
        csr_edges,
        csr_memory: CsrMemoryResult {
            logical_edges: footprint.logical_edges,
            stored_edges: footprint.stored_edges,
            stored_bytes: footprint.stored_bytes,
            weight_bytes: footprint.weight_bytes,
            flat_bytes: footprint.flat_bytes,
            conv_logical_edges: footprint.conv_logical_edges,
            conv_stored_edges: footprint.conv_stored_edges,
            patterns: footprint.patterns,
            conv_dedup_edge_ratio: footprint.conv_dedup_ratio(),
            bytes_dedup_ratio: footprint.flat_bytes as f64 / footprint.stored_bytes.max(1) as f64,
        },
        event_single: BackendResult {
            images_per_sec: per_sec(batch, event_wall),
            wall_ms: event_wall.as_secs_f64() * 1e3,
        },
        csr_single: BackendResult {
            images_per_sec: per_sec(batch, csr_wall),
            wall_ms: csr_wall.as_secs_f64() * 1e3,
        },
        batched: BatchedResult {
            max_lanes: csr.max_lanes(),
            images_per_sec: per_sec(batch, batched_wall),
            wall_ms: batched_wall.as_secs_f64() * 1e3,
            speedup_vs_csr_single: csr_wall.as_secs_f64() / batched_wall.as_secs_f64(),
            matches_csr_single: batched_matches,
        },
        csr_pooled: PooledResult {
            images_per_sec: report.metrics.images_per_sec,
            wall_ms: report.metrics.wall_ms,
            requests: report.metrics.requests,
            latency_p50_us: report.metrics.latency_p50_us,
            latency_p99_us: report.metrics.latency_p99_us,
            latency_mean_us: report.metrics.latency_mean_us,
        },
        streaming,
        gateway,
        registry,
        faults,
        quant: QuantResult {
            bits: qconfig.bits,
            base: qconfig.base.label(),
            images_per_sec: per_sec(batch, quant_wall),
            wall_ms: quant_wall.as_secs_f64() * 1e3,
            code_bytes: quant_fp.weight_bytes,
            f32_weight_bytes: footprint.weight_bytes,
            weight_bytes_ratio: footprint.weight_bytes as f64 / quant_fp.weight_bytes.max(1) as f64,
            max_abs_logit_diff_vs_quantized_event: quant_vs_event,
            stats_match_quantized_event: quant_stats == qevent_stats,
            top1_agreement_vs_f32: top1_agreement(&quant_logits, &csr_logits),
            max_abs_logit_diff_vs_f32: max_abs_diff(&quant_logits, &csr_logits),
            shift_add_available: quant_engine.compiled().shift_add_available(),
            mantissa_error_bound: quant_engine.compiled().mantissa_error_bound(),
            shift_add_max_rel_error: quant_engine
                .compiled()
                .layers()
                .iter()
                .map(|l| l.shift_add_max_rel_error)
                .fold(0.0, f32::max),
            max_abs_logit_diff_shift_add_vs_lut: max_abs_diff(&sa_logits, &quant_logits),
            energy: EnergySummary {
                energy_per_image_uj: quant_hw.energy_per_image_uj,
                model_fps: quant_hw.fps,
                total_sops: quant_hw.total_sops,
            },
        },
        observability,
        telemetry,
        logging,
        speedup_csr_single: event_wall.as_secs_f64() / csr_wall.as_secs_f64(),
        speedup_batched: event_wall.as_secs_f64() / batched_wall.as_secs_f64(),
        speedup_csr_pooled: event_wall.as_secs_f64() / (report.metrics.wall_ms / 1e3),
        max_abs_logit_diff_vs_reference: max_diff,
        logits_within_1e4: max_diff <= 1e-4,
        stats_match_reference_backend: csr_stats == event_stats && batched_stats == event_stats,
        energy_fast_path: EnergySummary {
            energy_per_image_uj: hw.energy_per_image_uj,
            model_fps: hw.fps,
            total_sops: hw.total_sops,
        },
    };

    let json = serde_json::to_string_pretty(&out).expect("serialize report");
    std::fs::write("BENCH_runtime.json", &json).expect("write BENCH_runtime.json");

    println!("{json}");
    eprintln!(
        "event {:.1} img/s | csr x1 {:.1} img/s ({:.2}x) | batched({} lanes) {:.1} img/s ({:.2}x) | csr pool({threads}t) {:.1} img/s ({:.2}x) | p99 {:.0} µs | max|Δlogit| {:.2e}",
        out.event_single.images_per_sec,
        out.csr_single.images_per_sec,
        out.speedup_csr_single,
        out.batched.max_lanes,
        out.batched.images_per_sec,
        out.speedup_batched,
        out.csr_pooled.images_per_sec,
        out.speedup_csr_pooled,
        out.csr_pooled.latency_p99_us,
        out.max_abs_logit_diff_vs_reference,
    );
    eprintln!(
        "csr memory: {} logical edges -> {} stored ({} patterns) | conv dedup {:.0}x edges | {:.2} MB -> {:.3} MB",
        out.csr_memory.logical_edges,
        out.csr_memory.stored_edges,
        out.csr_memory.patterns,
        out.csr_memory.conv_dedup_edge_ratio,
        out.csr_memory.flat_bytes as f64 / 1e6,
        out.csr_memory.stored_bytes as f64 / 1e6,
    );
    eprintln!(
        "quant({}b {}) {:.1} img/s | codes {:.3} MB vs f32 {:.3} MB ({:.1}x) | vs quantized event {:.1e} | top-1 vs f32 {:.1}% | shift-add bound {:.1e} | {:.2} µJ/img",
        out.quant.bits,
        out.quant.base,
        out.quant.images_per_sec,
        out.quant.code_bytes as f64 / 1e6,
        out.quant.f32_weight_bytes as f64 / 1e6,
        out.quant.weight_bytes_ratio,
        out.quant.max_abs_logit_diff_vs_quantized_event,
        out.quant.top1_agreement_vs_f32 * 100.0,
        out.quant.mantissa_error_bound,
        out.quant.energy.energy_per_image_uj,
    );
    eprintln!(
        "stream({}c) {:.1} img/s | e2e p50 {:.0} µs p99 {:.0} µs | queue share {:.0}% | occupancy mean {:.1} max {} | shed {}",
        out.streaming.clients,
        out.streaming.metrics.images_per_sec,
        out.streaming.metrics.e2e_p50_us,
        out.streaming.metrics.e2e_p99_us,
        out.streaming.metrics.queue_wait_share * 100.0,
        out.streaming.metrics.mean_batch_occupancy,
        out.streaming.metrics.max_batch_occupancy,
        out.streaming.metrics.shed_requests,
    );
    eprintln!(
        "gateway({}c http) {:.1} req/s | p50 {:.0} µs p99 {:.0} µs | {} ok / {} total | parse errors {} | backpressure: {} x 429, ok {}",
        out.gateway.clients,
        out.gateway.load.requests_per_sec,
        out.gateway.load.latency_p50_us,
        out.gateway.load.latency_p99_us,
        out.gateway.load.ok_200,
        out.gateway.load.requests,
        out.gateway.parse_errors,
        out.gateway.backpressure.load.shed_429,
        out.gateway.backpressure.load.ok_200,
    );
    eprintln!(
        "registry: cold {:.2} ms load + {:.2} ms compile | warm {:.0} ns | alpha {:.1} req/s, beta {:.1} req/s | swap p99 {:+.1}% ({} old / {} new, 0 dropped: {})",
        out.registry.cold_load_ms,
        out.registry.cold_compile_ms,
        out.registry.warm_lookup_mean_ns,
        out.registry.alpha.requests_per_sec,
        out.registry.beta.requests_per_sec,
        out.registry.swap.p99_delta_frac * 100.0,
        out.registry.swap.load.ok_per_expected.first().copied().unwrap_or(0),
        out.registry.swap.load.ok_per_expected.get(1).copied().unwrap_or(0),
        out.registry.swap.ok_match,
    );
    eprintln!(
        "trace: engine overhead {:+.2}% (best of {}) | stream off delta {:+.2}% | traced {:.1} img/s, {} spans on {} tracks, {} dropped | chrome {} bytes{}",
        out.observability.tracing_on_overhead_frac * 100.0,
        out.observability.rounds,
        out.observability.streaming_off_delta_frac * 100.0,
        out.observability.streaming_on_images_per_sec,
        out.observability.spans_recorded,
        out.observability.trace_tracks,
        out.observability.spans_dropped,
        out.observability.chrome_trace_bytes,
        if out.observability.chrome_trace_path.is_empty() {
            String::new()
        } else {
            format!(" -> {}", out.observability.chrome_trace_path)
        },
    );
    eprintln!(
        "telemetry: windowed p99 {:.0} µs vs cumulative {:.0} µs (x{:.3}) | {:.2} µJ/inference | slo {} | scrape {:.0} µs ({} B) | on/off delta {:+.2}%",
        out.telemetry.windowed_p99_us,
        out.telemetry.cumulative_p99_us,
        out.telemetry.p99_agreement_ratio,
        out.telemetry.energy_uj_per_inference,
        out.telemetry.slo_state,
        out.telemetry.scrape_mean_us,
        out.telemetry.stats_body_bytes,
        out.telemetry.telemetry_overhead_frac * 100.0,
    );
    eprintln!(
        "logging: {} events ({} dropped) | /v1/logs ok {} | incident {} round-trip {} ({} written) | on/off delta {:+.2}%",
        out.logging.events_recorded,
        out.logging.events_dropped,
        out.logging.logs_route_ok,
        out.logging.incident_id,
        out.logging.incident_round_trip_ok,
        out.logging.incidents_written,
        out.logging.logging_overhead_frac * 100.0,
    );
    eprintln!(
        "faults({} seeds) {} req: {} ok / {} 429 / {} 503 / {} other / {} transport | injected {} | mismatches {} | retries {} quarantined {} | post-storm ok {} | breaker open {} recover {} | torn-write survived {} | disabled delta {:+.2}%",
        out.faults.seeds.len(),
        out.faults.storm_requests,
        out.faults.storm_ok_200,
        out.faults.storm_shed_429,
        out.faults.storm_unavailable_503,
        out.faults.storm_other_status,
        out.faults.storm_transport_errors,
        out.faults.injected_total,
        out.faults.storm_mismatches,
        out.faults.batch_retries,
        out.faults.quarantined,
        out.faults.post_storm_ok,
        out.faults.breaker_opened,
        out.faults.breaker_recovered,
        out.faults.torn_write_survived,
        out.faults.disabled_delta_frac * 100.0,
    );
}

/// Boots a loopback gateway over `backend`, drives it with the closed-loop
/// HTTP load generator (random per-request deadlines and priorities), then
/// repeats at `max_pending = 1` to force wire-visible 429 sheds. Every 200
/// response's logits are checked bit-for-bit against `expected_logits`.
#[allow(clippy::too_many_arguments)]
fn gateway_smoke(
    backend: Arc<dyn InferenceBackend>,
    x: &Tensor,
    expected_logits: &Tensor,
    input_dims: &[usize],
    clients: usize,
    passes: usize,
    max_batch: usize,
    max_delay: Duration,
    seed: u64,
) -> GatewayResult {
    let server = Arc::new(StreamingServer::new(
        Arc::clone(&backend),
        StreamingConfig {
            threads: 0,
            max_batch,
            max_delay,
            max_pending: 0,
            brownout: None,
        },
    ));
    let mut gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            workers: clients,
            ..GatewayConfig::for_dims(input_dims)
        },
    )
    .expect("gateway bind on loopback");
    let load = run_closed_loop(
        gateway.local_addr(),
        x,
        Some(expected_logits),
        &LoadGenConfig {
            clients,
            passes,
            deadline_ms: Some((1.0, 8.0)),
            max_priority: 3,
            seed,
            ..LoadGenConfig::default()
        },
    );
    let metrics = gateway.shutdown();
    let streaming = server.shutdown();
    let matches_batched = load.mismatches == 0 && load.ok_200 > 0 && load.ok_200 == load.requests;
    let parse_errors = metrics.parse_errors;

    // Overload sub-run: a fresh serving stack with max_pending = 1 and a
    // wide batching window, hammered by 4 clients — concurrent submitters
    // must bounce off the single admission slot as wire-level 429s. A
    // pathological scheduler could serialize a round perfectly, so retry
    // up to 3 rounds for sheds (in practice the first round sheds).
    let sample_len: usize = input_dims.iter().product();
    let classes = expected_logits.dims()[1];
    let sub_n = x.dims()[0].min(8);
    let mut sub_dims = vec![sub_n];
    sub_dims.extend_from_slice(input_dims);
    let sub_x = Tensor::from_vec(x.as_slice()[..sub_n * sample_len].to_vec(), &sub_dims)
        .expect("subset slice");
    let sub_expected = Tensor::from_vec(
        expected_logits.as_slice()[..sub_n * classes].to_vec(),
        &[sub_n, classes],
    )
    .expect("subset logits");
    let bp_server = Arc::new(StreamingServer::new(
        backend,
        StreamingConfig {
            threads: 1,
            max_batch: 64,
            max_delay: Duration::from_millis(15),
            max_pending: 1,
            brownout: None,
        },
    ));
    let mut bp_gateway = Gateway::start(
        Arc::clone(&bp_server),
        GatewayConfig {
            workers: 4,
            ..GatewayConfig::for_dims(input_dims)
        },
    )
    .expect("backpressure gateway bind");
    let mut bp_load = None;
    for round in 0..3u64 {
        let r = run_closed_loop(
            bp_gateway.local_addr(),
            &sub_x,
            Some(&sub_expected),
            &LoadGenConfig {
                clients: 4,
                passes: 4,
                deadline_ms: None,
                max_priority: 0,
                seed: seed ^ (0xB00 + round),
                ..LoadGenConfig::default()
            },
        );
        let saw = r.shed_429 > 0;
        bp_load = Some(r);
        if saw {
            break;
        }
    }
    bp_gateway.shutdown();
    bp_server.shutdown();
    let bp_load = bp_load.expect("at least one overload round");
    let backpressure = GatewayBackpressureResult {
        max_pending: 1,
        saw_429: bp_load.shed_429 > 0,
        ok_match: bp_load.mismatches == 0 && bp_load.ok_200 > 0,
        load: bp_load,
    };
    GatewayResult {
        clients,
        passes,
        load,
        matches_batched,
        parse_errors,
        metrics,
        streaming,
        backpressure,
    }
}

/// The live-telemetry section: two identical gateway stacks over the same
/// backend — one with the windowed `TelemetryHub` attached (the
/// default), one with `telemetry: false` — driven by interleaved
/// best-of-N closed-loop HTTP rounds for the overhead estimate. The
/// telemetry-on stack is then scraped: `/v1/stats` must parse with the
/// documented schema and its `model=default` windowed p99 / energy
/// figures must agree with the cumulative recorders; `/dashboard` must
/// serve a non-empty self-contained page; N timed scrapes price the
/// dashboard's poll loop.
#[allow(clippy::too_many_arguments)]
fn telemetry_bench(
    backend: Arc<dyn InferenceBackend>,
    x: &Tensor,
    expected_logits: &Tensor,
    input_dims: &[usize],
    clients: usize,
    passes: usize,
    max_batch: usize,
    max_delay: Duration,
    seed: u64,
) -> TelemetryResult {
    let make_stack = |telemetry: bool| {
        let server = Arc::new(StreamingServer::new(
            Arc::clone(&backend),
            StreamingConfig {
                threads: 0,
                max_batch,
                max_delay,
                max_pending: 0,
                brownout: None,
            },
        ));
        let gateway = Gateway::start(
            Arc::clone(&server),
            GatewayConfig {
                workers: clients,
                telemetry,
                ..GatewayConfig::for_dims(input_dims)
            },
        )
        .expect("telemetry gateway bind");
        (gateway, server)
    };
    let (mut on_gateway, on_server) = make_stack(true);
    let (mut off_gateway, off_server) = make_stack(false);

    // Interleaved best-of-N: each round drives the identical closed loop
    // through both stacks back to back, so frequency/scheduler drift hits
    // both sides equally; best-of-N on each side is the overhead estimate
    // (same protocol as the tracing and fault-injection overhead gates).
    let rounds = 5usize;
    let mut best_on = 0.0f64;
    let mut best_off = 0.0f64;
    let mut on_ok_match = true;
    let mut off_ok_match = true;
    let clean = |r: &LoadReport| {
        r.mismatches == 0 && r.transport_errors == 0 && r.ok_200 > 0 && r.ok_200 == r.requests
    };
    for round in 0..rounds as u64 {
        let config = |s: u64| LoadGenConfig {
            clients,
            passes,
            seed: s,
            ..LoadGenConfig::default()
        };
        let off = run_closed_loop(
            off_gateway.local_addr(),
            x,
            Some(expected_logits),
            &config(seed ^ (0x0FF0 + round)),
        );
        off_ok_match &= clean(&off);
        best_off = best_off.max(off.requests_per_sec);
        let on = run_closed_loop(
            on_gateway.local_addr(),
            x,
            Some(expected_logits),
            &config(seed ^ (0x0A00 + round)),
        );
        on_ok_match &= clean(&on);
        best_on = best_on.max(on.requests_per_sec);
    }
    let telemetry_overhead_frac = (best_off - best_on) / best_off.max(1e-9);

    // Scrape the telemetry-on stack while its windows still hold every
    // round's traffic (the rounds take seconds; the widest window is
    // 300 s), so windowed and cumulative figures describe the same load.
    let mut client = HttpClient::connect(on_gateway.local_addr()).expect("stats client");
    let stats = client.get("/v1/stats").expect("stats GET");
    let stats_body_bytes = stats.body.len();
    let parsed: Option<serde::Content> = std::str::from_utf8(&stats.body)
        .ok()
        .and_then(|text| serde_json::from_str(text).ok())
        .filter(|_| stats.status == 200);

    let mut schema_version = 0u64;
    let mut windowed_p99_us = 0.0f64;
    let mut cumulative_p99_us = 0.0f64;
    let mut energy_uj_per_inference = 0.0f64;
    let mut slo_state = String::new();
    let mut deadline_miss_ratio_fast = 0.0f64;
    let mut found_default_model = false;
    if let Some(map) = parsed.as_ref().and_then(|c| c.as_map()) {
        schema_version = serde::field(map, "schema_version")
            .ok()
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        cumulative_p99_us = serde::field(map, "cumulative")
            .ok()
            .and_then(|c| c.as_map())
            .and_then(|c| serde::field(c, "e2e_p99_us").ok())
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        if let Some(models) = serde::field(map, "models").ok().and_then(|m| m.as_seq()) {
            if let Some(model) = models
                .iter()
                .filter_map(|m| m.as_map())
                .find(|m| serde::field(m, "model").ok().and_then(|v| v.as_str()) == Some("default"))
            {
                found_default_model = true;
                windowed_p99_us = serde::field(model, "e2e_us")
                    .ok()
                    .and_then(|w| w.as_map())
                    .and_then(|w| serde::field(w, "300s").ok())
                    .and_then(|w| w.as_map())
                    .and_then(|w| serde::field(w, "p99").ok())
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0);
                energy_uj_per_inference = serde::field(model, "energy_uj_per_inference")
                    .ok()
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0);
                slo_state = serde::field(model, "slo_state")
                    .ok()
                    .and_then(|v| v.as_str())
                    .unwrap_or("")
                    .to_string();
                deadline_miss_ratio_fast = serde::field(model, "deadline_miss_ratio")
                    .ok()
                    .and_then(|r| r.as_map())
                    .and_then(|r| serde::field(r, "fast").ok())
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0);
            }
        }
    }
    let stats_parse_ok = parsed.is_some() && schema_version == 1 && found_default_model;
    // Windowed quantiles report their log-linear bin's upper edge: bounded
    // overshoot, never undershoot (see the snn-telemetry docs).
    let p99_within_tolerance = cumulative_p99_us > 0.0
        && windowed_p99_us >= cumulative_p99_us * 0.99
        && windowed_p99_us <= cumulative_p99_us * 1.25 + 1.0;

    // What one dashboard poll costs the gateway.
    let scrapes = 30u64;
    let t0 = Instant::now();
    for _ in 0..scrapes {
        let scrape = client.get("/v1/stats").expect("stats scrape");
        assert_eq!(scrape.status, 200, "scrape loop must keep getting 200s");
    }
    let scrape_mean_us = t0.elapsed().as_micros() as f64 / scrapes as f64;

    let dash = client.get("/dashboard").expect("dashboard GET");
    let dashboard_bytes = dash.body.len();
    let dashboard_ok = dash.status == 200
        && dashboard_bytes > 1000
        && std::str::from_utf8(&dash.body)
            .map(|h| h.contains("<!DOCTYPE html>") && h.contains("/v1/stats"))
            .unwrap_or(false);

    on_gateway.shutdown();
    on_server.shutdown();
    off_gateway.shutdown();
    off_server.shutdown();

    TelemetryResult {
        stats_parse_ok,
        schema_version,
        windowed_p99_us,
        cumulative_p99_us,
        p99_agreement_ratio: windowed_p99_us / cumulative_p99_us.max(1e-9),
        p99_within_tolerance,
        energy_uj_per_inference,
        slo_state,
        deadline_miss_ratio_fast,
        dashboard_ok,
        dashboard_bytes,
        scrapes,
        scrape_mean_us,
        stats_body_bytes,
        rounds,
        on_requests_per_sec: best_on,
        off_requests_per_sec: best_off,
        telemetry_overhead_frac,
        on_ok_match,
        off_ok_match,
    }
}

/// The structured-logging section: two identical gateway stacks over the
/// same backend — one with the flight recorder and an incidents dir
/// attached (`logging: true`, the default), one with `logging: false` —
/// driven by interleaved best-of-N closed-loop rounds for the overhead
/// estimate (same protocol as the tracing/telemetry/fault gates). The
/// logging-on stack is then probed: `/v1/logs` must serve the recorded
/// ring, and an explicitly written incident must round-trip through
/// `GET /v1/incidents/<id>` with its kind echoed and its embedded
/// `/v1/stats` snapshot parseable.
#[allow(clippy::too_many_arguments)]
fn logging_bench(
    backend: Arc<dyn InferenceBackend>,
    x: &Tensor,
    expected_logits: &Tensor,
    input_dims: &[usize],
    clients: usize,
    passes: usize,
    max_batch: usize,
    max_delay: Duration,
    seed: u64,
) -> LoggingResult {
    let incidents_dir =
        std::env::temp_dir().join(format!("snn_bench_incidents_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&incidents_dir);
    let make_stack = |logging: bool| {
        let server = Arc::new(StreamingServer::new(
            Arc::clone(&backend),
            StreamingConfig {
                threads: 0,
                max_batch,
                max_delay,
                max_pending: 0,
                brownout: None,
            },
        ));
        let gateway = Gateway::start(
            Arc::clone(&server),
            GatewayConfig {
                workers: clients,
                logging,
                incidents_dir: logging.then(|| incidents_dir.clone()),
                ..GatewayConfig::for_dims(input_dims)
            },
        )
        .expect("logging gateway bind");
        (gateway, server)
    };
    let (mut on_gateway, on_server) = make_stack(true);
    let (mut off_gateway, off_server) = make_stack(false);

    let rounds = 5usize;
    let mut best_on = 0.0f64;
    let mut best_off = 0.0f64;
    let mut on_ok_match = true;
    let mut off_ok_match = true;
    let clean = |r: &LoadReport| {
        r.mismatches == 0 && r.transport_errors == 0 && r.ok_200 > 0 && r.ok_200 == r.requests
    };
    for round in 0..rounds as u64 {
        let config = |s: u64| LoadGenConfig {
            clients,
            passes,
            seed: s,
            ..LoadGenConfig::default()
        };
        let off = run_closed_loop(
            off_gateway.local_addr(),
            x,
            Some(expected_logits),
            &config(seed ^ (0x10F0 + round)),
        );
        off_ok_match &= clean(&off);
        best_off = best_off.max(off.requests_per_sec);
        let on = run_closed_loop(
            on_gateway.local_addr(),
            x,
            Some(expected_logits),
            &config(seed ^ (0x10A0 + round)),
        );
        on_ok_match &= clean(&on);
        best_on = best_on.max(on.requests_per_sec);
    }
    let logging_overhead_frac = (best_off - best_on) / best_off.max(1e-9);

    let collector = Arc::clone(on_gateway.log_collector().expect("logging-on collector"));
    let events_recorded = collector.events_recorded_total();
    let events_dropped = collector.events_dropped();

    let mut client = HttpClient::connect(on_gateway.local_addr()).expect("logs client");
    let logs = client.get("/v1/logs?level=info").expect("logs GET");
    let logs_route_ok = logs.status == 200
        && std::str::from_utf8(&logs.body)
            .ok()
            .and_then(|text| serde_json::from_str::<serde::Content>(text).ok())
            .map(|body| {
                body.as_map()
                    .and_then(|m| serde::field(m, "events").ok())
                    .and_then(|e| e.as_seq())
                    .is_some_and(|events| !events.is_empty())
            })
            .unwrap_or(false);

    // The incident round-trip: write one on the live stack, fetch it
    // back over the wire, and require the embedded stats snapshot to be
    // real JSON (it comes from the same renderer as `/v1/stats`).
    let recorder = Arc::clone(on_gateway.incidents().expect("incident recorder"));
    let incident_id = recorder
        .record(
            "bench_probe",
            "synthetic incident for the round-trip gate",
            None,
        )
        .unwrap_or_default();
    let incidents_written = recorder.written();
    let listed = client.get("/v1/incidents").expect("incident list GET");
    let fetched = client
        .get(&format!("/v1/incidents/{incident_id}"))
        .expect("incident GET");
    let incident_round_trip_ok = !incident_id.is_empty()
        && listed.status == 200
        && std::str::from_utf8(&listed.body).is_ok_and(|t| t.contains(&incident_id))
        && fetched.status == 200
        && std::str::from_utf8(&fetched.body)
            .ok()
            .and_then(|text| serde_json::from_str::<serde::Content>(text).ok())
            .map(|report| {
                let map = report.as_map();
                let kind_ok = map
                    .and_then(|m| serde::field(m, "kind").ok())
                    .and_then(|v| v.as_str())
                    == Some("bench_probe");
                let stats_ok = map
                    .and_then(|m| serde::field(m, "sections").ok())
                    .and_then(|s| s.as_map())
                    .and_then(|s| serde::field(s, "stats").ok())
                    .is_some_and(|stats| stats.as_map().is_some());
                kind_ok && stats_ok
            })
            .unwrap_or(false);

    on_gateway.shutdown();
    on_server.shutdown();
    off_gateway.shutdown();
    off_server.shutdown();
    let _ = std::fs::remove_dir_all(&incidents_dir);

    LoggingResult {
        rounds,
        on_requests_per_sec: best_on,
        off_requests_per_sec: best_off,
        logging_overhead_frac,
        on_ok_match,
        off_ok_match,
        events_recorded,
        events_dropped,
        logs_route_ok,
        incident_id,
        incidents_written,
        incident_round_trip_ok,
    }
}

/// A tiny dense artifact for the registry-focused sections: flatten →
/// dense(16) → relu → dense(4) over `dims`, converted with the paper
/// kernel.
fn small_artifact(name: &str, version: &str, seed: u64, dims: &[usize]) -> ModelArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let in_len: usize = dims.iter().product();
    let net = Sequential::new(vec![
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(in_len, 16, &mut rng)),
        Layer::Activation(ActivationLayer::new(Box::new(Relu))),
        Layer::Dense(DenseLayer::new(16, 4, &mut rng)),
    ]);
    let model = convert(&net, Base2Kernel::paper_default(), 24).expect("bench model");
    ModelArtifact::build(name, version, model, dims, BackendHint::Csr).expect("bench artifact")
}

/// Boots a [`ModelRegistry`] over a scratch artifact dir (two versions of
/// `alpha` plus a `beta` with different input dims), measures the cold
/// load / compile / warm-lookup costs, drives both per-model routes
/// through a registry-backed gateway, and fires an atomic version swap
/// under closed-loop load — every response must bit-match exactly one
/// version's reference logits.
fn registry_smoke(clients: usize, passes: usize, seed: u64) -> RegistryResult {
    let dir = std::env::temp_dir().join(format!("snn_bench_registry_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench registry dir");

    let dims_a = [1usize, 4, 6];
    let dims_b = [1usize, 3, 4];
    let v1 = small_artifact("alpha", "1", seed ^ 0xA1, &dims_a);
    let v2 = small_artifact("alpha", "2", seed ^ 0xA2, &dims_a);
    let b1 = small_artifact("beta", "1", seed ^ 0xB1, &dims_b);
    let mut artifact_bytes = 0u64;
    for artifact in [&v1, &v2, &b1] {
        let path = dir.join(artifact.info.file_name());
        artifact.save(&path).expect("save bench artifact");
        artifact_bytes += std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    }

    let registry = Arc::new(
        ModelRegistry::open(
            &dir,
            RegistryConfig {
                byte_budget: 0,
                streaming: StreamingConfig {
                    threads: 2,
                    max_batch: 8,
                    max_delay: Duration::from_millis(1),
                    max_pending: 0,
                    brownout: None,
                },
                ..RegistryConfig::default()
            },
        )
        .expect("registry open"),
    );

    // Cold start: the first lookup decodes the artifact and compiles the
    // backend; the handle carries both wall times.
    let cold = registry.get_or_load("alpha").expect("cold load");
    let (cold_load_ms, cold_compile_ms) = (cold.load_ms(), cold.compile_ms());
    drop(cold);

    // Warm-hit cost: resident lookups are a lock + LRU touch.
    let warm_lookups = 1_000u64;
    let t0 = Instant::now();
    for _ in 0..warm_lookups {
        let _ = registry.get_or_load("alpha").expect("warm lookup");
    }
    let warm_lookup_mean_ns = t0.elapsed().as_nanos() as f64 / warm_lookups as f64;

    // Registry-backed gateway; the default `/v1/infer` route keeps serving
    // an alpha-shaped standalone server.
    let (default_engine, _) = v2.compile().expect("default backend");
    let server = Arc::new(StreamingServer::new(
        default_engine,
        StreamingConfig {
            threads: 2,
            max_batch: 8,
            max_delay: Duration::from_millis(1),
            max_pending: 0,
            brownout: None,
        },
    ));
    let mut gateway = Gateway::start_with_registry(
        Arc::clone(&server),
        Arc::clone(&registry),
        GatewayConfig {
            workers: clients.max(4),
            ..GatewayConfig::for_dims(&dims_a)
        },
    )
    .expect("registry gateway bind");
    let addr = gateway.local_addr();

    // Reference batches + logits per artifact, via direct compiles.
    let n = 16usize;
    let batch_for = |dims: &[usize], tag: u64| {
        let mut rng = StdRng::seed_from_u64(seed ^ tag);
        let mut batch_dims = vec![n];
        batch_dims.extend_from_slice(dims);
        snn_tensor::uniform(&batch_dims, 0.0, 1.0, &mut rng)
    };
    let reference = |artifact: &ModelArtifact, x: &Tensor| {
        let (engine, _) = artifact.compile().expect("reference compile");
        engine.run_batch(x).expect("reference run").0
    };
    let xa = batch_for(&dims_a, 0x0005_EEDA);
    let xb = batch_for(&dims_b, 0x0005_EEDB);
    let e1 = reference(&v1, &xa);
    let e2 = reference(&v2, &xa);
    let eb = reference(&b1, &xb);

    // Baseline closed loops: alpha (active version 2 — lexically greatest
    // wins by default) and beta (different input geometry).
    let alpha = run_closed_loop_any(
        addr,
        &xa,
        &[&e2],
        &LoadGenConfig {
            clients,
            passes,
            seed,
            path: "/v1/models/alpha/infer".into(),
            ..LoadGenConfig::default()
        },
    );
    let beta = run_closed_loop_any(
        addr,
        &xb,
        &[&eb],
        &LoadGenConfig {
            clients,
            passes,
            seed: seed ^ 0xBEE,
            path: "/v1/models/beta/infer".into(),
            ..LoadGenConfig::default()
        },
    );

    // Swap under load: the closed loop accepts a 200 iff it bit-matches
    // v2 (pre-swap) or v1 (post-swap); the swap fires mid-run.
    let loader = {
        let (xa, e1, e2) = (xa.clone(), e1.clone(), e2.clone());
        let config = LoadGenConfig {
            clients,
            passes: passes * 2,
            seed: seed ^ 0x5AB,
            path: "/v1/models/alpha/infer".into(),
            ..LoadGenConfig::default()
        };
        std::thread::spawn(move || run_closed_loop_any(addr, &xa, &[&e2, &e1], &config))
    };
    std::thread::sleep(Duration::from_millis(50));
    let mut swap_client = HttpClient::connect(addr).expect("swap client");
    let swap_response = swap_client
        .post_json("/v1/models/alpha/swap", "{\"version\":\"1\"}")
        .expect("swap request");
    assert_eq!(swap_response.status, 200, "swap must succeed");
    let swap_load = loader.join().expect("swap load generator");

    let metrics = registry.metrics();
    gateway.shutdown();
    server.shutdown();
    registry.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let ok = |r: &LoadReport| {
        r.mismatches == 0 && r.transport_errors == 0 && r.ok_200 > 0 && r.ok_200 == r.requests
    };
    let swap = RegistrySwapResult {
        ok_match: ok(&swap_load),
        saw_both_versions: swap_load.ok_per_expected.iter().all(|&c| c > 0),
        swapped_to: "1".into(),
        baseline_p99_us: alpha.latency_p99_us,
        p99_delta_frac: (swap_load.latency_p99_us - alpha.latency_p99_us)
            / alpha.latency_p99_us.max(1.0),
        load: swap_load,
    };
    RegistryResult {
        models: 3,
        artifact_bytes,
        cold_load_ms,
        cold_compile_ms,
        warm_lookups,
        warm_lookup_mean_ns,
        alpha_ok_match: ok(&alpha),
        alpha,
        beta_ok_match: ok(&beta),
        beta,
        swap,
        metrics,
    }
}

/// Field-wise sum of two fired-counter snapshots (one armed segment
/// each).
fn add_counts(into: &mut FaultCounts, c: &FaultCounts) {
    into.backend_panics += c.backend_panics;
    into.backend_slowdowns += c.backend_slowdowns;
    into.artifact_read_errors += c.artifact_read_errors;
    into.artifact_torn_writes += c.artifact_torn_writes;
    into.compile_failures += c.compile_failures;
    into.conn_resets += c.conn_resets;
    into.evaluated += c.evaluated;
}

/// The robustness section: seeded chaos storms through the full HTTP
/// path with the global [`FaultInjector`] armed (backend panics and
/// slowdowns, wire-level connection resets, a brownout watermark tight
/// enough to shed under the closed-loop load), a post-storm clean pass
/// through the *same* surviving stack, the circuit-breaker
/// open-and-recover scenario driven by injected compile failures, a torn
/// artifact write that must leave the previous version loadable, and a
/// disarmed closed-loop run whose throughput is compared against the
/// main `streaming` section (the disabled path is one relaxed atomic
/// load per hook). Always disarms before returning.
#[allow(clippy::too_many_arguments)]
fn faults_bench(
    backend: Arc<dyn InferenceBackend>,
    x: &Tensor,
    expected_logits: &Tensor,
    input_dims: &[usize],
    baseline_images_per_sec: f64,
    http_clients: usize,
    stream_clients: usize,
    passes: usize,
    max_batch: usize,
    max_delay: Duration,
    seed: u64,
) -> FaultsResult {
    let injector = FaultInjector::global();
    injector.disarm();
    let mut injected = FaultCounts::default();

    // The storm fires injected panics on purpose; silence the default
    // panic printer for exactly those so stderr stays readable. Any
    // *real* panic still prints through the saved hook.
    let saved_hook = std::panic::take_hook();
    let forward = Arc::new(saved_hook);
    let forward_for_hook = Arc::clone(&forward);
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("injected backend panic"));
        if !injected {
            forward_for_hook(info);
        }
    }));

    // One serving stack for the whole storm: the same workers must absorb
    // every seed's faults and then serve the clean pass.
    let server = Arc::new(StreamingServer::new(
        Arc::clone(&backend),
        StreamingConfig {
            threads: 0,
            max_batch,
            max_delay,
            max_pending: 0,
            // Brownout enabled so the admission path runs its policy
            // branch under chaos, but with watermarks the closed-loop
            // concurrency cannot cross (slots release shortly after each
            // reply, so transient occupancy stays well under 8x clients):
            // storm outcomes stay a deterministic function of the seeds.
            brownout: Some(BrownoutConfig {
                high_water: http_clients * 8,
                low_water: http_clients * 4,
                shed_below_priority: 1,
            }),
        },
    ));
    let mut gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            workers: http_clients,
            ..GatewayConfig::for_dims(input_dims)
        },
    )
    .expect("faults gateway bind");

    let seeds: Vec<u64> = (0..3u64).map(|i| seed ^ (0xC4A0 + i)).collect();
    let mut storm = LoadReport::default();
    let mut all_resolved = true;
    for &s in &seeds {
        injector.arm(
            s,
            FaultConfig {
                backend_panic: 0.05,
                backend_slow: 0.10,
                conn_reset: 0.10,
                slow_delay: Duration::from_micros(500),
                ..FaultConfig::default()
            },
        );
        let r = run_closed_loop(
            gateway.local_addr(),
            x,
            Some(expected_logits),
            &LoadGenConfig {
                clients: http_clients,
                passes,
                max_priority: 3,
                seed: s,
                retry_after_cap: Some(Duration::from_millis(2)),
                ..LoadGenConfig::default()
            },
        );
        injector.disarm();
        add_counts(&mut injected, &injector.counts());
        all_resolved &= r.requests
            == r.ok_200 + r.shed_429 + r.unavailable_503 + r.other_status + r.transport_errors;
        storm.requests += r.requests;
        storm.ok_200 += r.ok_200;
        storm.shed_429 += r.shed_429;
        storm.unavailable_503 += r.unavailable_503;
        storm.other_status += r.other_status;
        storm.transport_errors += r.transport_errors;
        storm.mismatches += r.mismatches;
    }

    // Post-storm serviceability: the same stack, injector disarmed, must
    // serve a clean all-200 bit-exact pass.
    let clean = run_closed_loop(
        gateway.local_addr(),
        x,
        Some(expected_logits),
        &LoadGenConfig {
            clients: http_clients,
            passes: 1,
            seed: seed ^ 0xC1EA,
            ..LoadGenConfig::default()
        },
    );
    let post_storm_ok = clean.mismatches == 0
        && clean.transport_errors == 0
        && clean.ok_200 > 0
        && clean.ok_200 == clean.requests;
    if !post_storm_ok {
        eprintln!("DEBUG post-storm clean report: {clean:?}");
    }
    gateway.shutdown();
    let storm_streaming = server.shutdown();

    // Breaker scenario: a registry whose only model compiles fine until
    // the injector fails it. Two failures trip the (threshold 2)
    // breaker, an open-state lookup is rejected without touching the
    // loader, and after "repair" (disarm) the half-open probe recovers.
    let dir = std::env::temp_dir().join(format!("snn_bench_faults_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench faults dir");
    let artifact = small_artifact("gamma", "1", seed ^ 0xF0, &[1, 3, 4]);
    let path = dir.join(artifact.info.file_name());
    artifact.save(&path).expect("save gamma");

    // Torn-write probe: a re-save under artifact_write=1.0 must fail and
    // leave the committed bytes loadable.
    injector.arm(
        seed ^ 0x7042,
        FaultConfig {
            artifact_write: 1.0,
            ..FaultConfig::default()
        },
    );
    let torn = artifact.save(&path).is_err();
    injector.disarm();
    add_counts(&mut injected, &injector.counts());
    let torn_write_survived = torn && ModelArtifact::load(&path).is_ok();

    let backoff = Duration::from_millis(30);
    let registry = ModelRegistry::open(
        &dir,
        RegistryConfig {
            byte_budget: 0,
            streaming: StreamingConfig {
                threads: 1,
                max_batch: 4,
                max_delay: Duration::from_millis(1),
                max_pending: 0,
                brownout: None,
            },
            breaker_threshold: 2,
            breaker_backoff: backoff,
            breaker_backoff_max: backoff * 8,
        },
    )
    .expect("faults registry open");
    injector.arm(
        seed ^ 0xB4EA,
        FaultConfig {
            compile: 1.0,
            ..FaultConfig::default()
        },
    );
    for _ in 0..2 {
        assert!(
            registry.get_or_load("gamma").is_err(),
            "injected compile failure must surface as a typed error"
        );
    }
    // Open state rejects with retry advice while the backoff runs.
    let rejected = matches!(
        registry.get_or_load("gamma"),
        Err(RegistryError::BreakerOpen { .. })
    );
    injector.disarm();
    add_counts(&mut injected, &injector.counts());
    std::thread::sleep(backoff + Duration::from_millis(10));
    let recovered = registry.get_or_load("gamma").is_ok();
    let breaker_metrics = registry.metrics();
    registry.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    // Disabled-path overhead: the same closed-loop streaming run as the
    // main section, injector disarmed, CI-gated to the noise band.
    let disabled = closed_loop_streaming(
        backend,
        x,
        expected_logits,
        stream_clients,
        passes,
        max_batch,
        max_delay,
        None,
    );
    // Back to the hook that was installed when we started.
    let _ = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| forward(info)));

    FaultsResult {
        seeds,
        storm_requests: storm.requests,
        storm_ok_200: storm.ok_200,
        storm_shed_429: storm.shed_429,
        storm_unavailable_503: storm.unavailable_503,
        storm_other_status: storm.other_status,
        storm_transport_errors: storm.transport_errors,
        storm_mismatches: storm.mismatches,
        all_resolved,
        injected_total: injected.total_fired(),
        injected,
        batch_retries: storm_streaming.batch_retries,
        quarantined: storm_streaming.quarantined,
        post_storm_ok,
        breaker_opened: breaker_metrics.breaker_opens > 0 && rejected,
        breaker_recovered: recovered && breaker_metrics.breaker_recoveries > 0,
        breaker_rejections: breaker_metrics.breaker_rejections,
        torn_write_survived,
        disabled_images_per_sec: disabled.metrics.images_per_sec,
        disabled_delta_frac: (baseline_images_per_sec - disabled.metrics.images_per_sec)
            / baseline_images_per_sec.max(1e-9),
    }
}

/// Elementwise max |a − b| over two equal-shape logit tensors.
fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

/// Fraction of batch rows whose argmax class agrees between two `[N,
/// classes]` logit tensors.
fn top1_agreement(a: &Tensor, b: &Tensor) -> f64 {
    let n = a.dims()[0];
    let classes = a.dims()[1];
    let argmax = |t: &Tensor, row: usize| {
        t.as_slice()[row * classes..(row + 1) * classes]
            .iter()
            .enumerate()
            .max_by(|(_, x), (_, y)| x.total_cmp(y))
            .map(|(i, _)| i)
            .unwrap_or(0)
    };
    let agree = (0..n).filter(|&i| argmax(a, i) == argmax(b, i)).count();
    agree as f64 / n.max(1) as f64
}

/// Drives the streaming server with `clients` closed-loop threads: client
/// `c` owns image indices `c, c + clients, …` and re-submits each of them
/// `passes` times, always waiting for the previous ticket before the next
/// submit. Checks every streamed row bit-for-bit against the single-thread
/// CSR logits.
///
/// With `trace: Some(collector)` the server is built with the collector
/// attached; if the collector is *enabled*, every submission additionally
/// carries its own freshly minted trace target (the fully-traced serving
/// configuration), otherwise the run measures the tracing-off hot path of
/// a trace-capable server.
#[allow(clippy::too_many_arguments)]
fn closed_loop_streaming(
    backend: Arc<dyn InferenceBackend>,
    x: &Tensor,
    expected_logits: &Tensor,
    clients: usize,
    passes: usize,
    max_batch: usize,
    max_delay: Duration,
    trace: Option<Arc<TraceCollector>>,
) -> StreamingResult {
    let batch = x.dims()[0];
    let sample_dims = x.dims()[1..].to_vec();
    let sample_len: usize = sample_dims.iter().product();
    let classes = expected_logits.dims()[1];
    let clients = clients.clamp(1, batch);
    let config = StreamingConfig {
        threads: 0, // one worker per core
        max_batch,
        max_delay,
        max_pending: 0,
        brownout: None,
    };
    let server = match &trace {
        Some(collector) => StreamingServer::new_traced(backend, config, Arc::clone(collector)),
        None => StreamingServer::new(backend, config),
    };
    let trace_submissions = trace.as_ref().filter(|c| c.is_enabled()).cloned();

    let all_match = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let server = &server;
                let sample_dims = &sample_dims;
                let trace_submissions = trace_submissions.as_ref();
                scope.spawn(move || {
                    let mut matches = true;
                    for _ in 0..passes {
                        for i in (c..batch).step_by(clients) {
                            let image = Tensor::from_vec(
                                x.as_slice()[i * sample_len..(i + 1) * sample_len].to_vec(),
                                sample_dims,
                            )
                            .expect("sample slice");
                            let mut options = SubmitOptions::default();
                            if let Some(collector) = trace_submissions {
                                options = options.traced(TraceTarget {
                                    trace: collector.mint_trace(),
                                    parent: 0,
                                });
                            }
                            let response = server
                                .submit_with(&image, options)
                                .expect("submit")
                                .wait()
                                .expect("streamed result");
                            matches &= response.logits.as_slice()
                                == &expected_logits.as_slice()[i * classes..(i + 1) * classes];
                        }
                    }
                    matches
                })
            })
            .collect();
        let mut all = true;
        for handle in handles {
            all &= handle.join().expect("client thread");
        }
        all
    });
    // Client 0 owns the most images when clients does not divide batch.
    let requests_per_client = passes * batch.div_ceil(clients);
    let metrics = server.shutdown();
    StreamingResult {
        clients,
        requests_per_client,
        max_batch,
        max_delay_us: max_delay.as_micros() as u64,
        matches_batched: all_match,
        metrics,
    }
}

/// Measures the cost of tracing at both layers it touches.
///
/// Engine level: `rounds` interleaved (baseline, traced) pairs of the same
/// `run_batch`, best-of-N on each side — the traced side runs under an
/// ambient [`push_context`] so every `csr.chunk`/`encode`/`stage.exec`
/// span is actually recorded. Interleaving plus best-of-N cancels the
/// frequency/scheduler drift that would otherwise dominate a ≤5% budget.
///
/// Streaming level: two extra closed-loop runs over a trace-capable
/// server — one with the collector disabled (the realistic tracing-off
/// serving configuration, compared against `untraced_images_per_sec` from
/// the main streaming run) and one with every submission traced (span
/// volume, drop count, and the Chrome export come from this run).
#[allow(clippy::too_many_arguments)]
fn observability_bench(
    csr: &CsrEngine,
    backend: Arc<dyn InferenceBackend>,
    x: &Tensor,
    expected_logits: &Tensor,
    untraced_images_per_sec: f64,
    clients: usize,
    passes: usize,
    max_batch: usize,
    max_delay: Duration,
    trace_out: Option<String>,
) -> ObservabilityResult {
    let batch = x.dims()[0];
    let rounds = 5usize;
    let engine_collector = Arc::new(TraceCollector::new(0));
    let mut best_baseline = Duration::MAX;
    let mut best_traced = Duration::MAX;
    let mut logits_match_with_tracing = true;
    for _ in 0..rounds {
        let t0 = Instant::now();
        let (baseline_logits, _) = csr.run_batch(x).expect("baseline run");
        best_baseline = best_baseline.min(t0.elapsed());

        let targets = vec![TraceTarget {
            trace: engine_collector.mint_trace(),
            parent: 0,
        }];
        let t0 = Instant::now();
        let traced_logits = {
            let _guard = push_context(Arc::clone(&engine_collector), targets);
            csr.run_batch(x).expect("traced run").0
        };
        best_traced = best_traced.min(t0.elapsed());
        logits_match_with_tracing &= traced_logits.as_slice() == baseline_logits.as_slice();
    }
    let engine_baseline_images_per_sec = batch as f64 / best_baseline.as_secs_f64();
    let engine_traced_images_per_sec = batch as f64 / best_traced.as_secs_f64();
    let tracing_on_overhead_frac =
        (best_traced.as_secs_f64() - best_baseline.as_secs_f64()) / best_baseline.as_secs_f64();

    // Tracing-off serving configuration: collector attached but disabled,
    // so every recording site pays exactly one relaxed atomic load.
    let off_collector = Arc::new(TraceCollector::new(0));
    off_collector.set_enabled(false);
    let off = closed_loop_streaming(
        Arc::clone(&backend),
        x,
        expected_logits,
        clients,
        passes,
        max_batch,
        max_delay,
        Some(off_collector),
    );
    let streaming_off_images_per_sec = off.metrics.images_per_sec;
    let streaming_off_delta_frac =
        (untraced_images_per_sec - streaming_off_images_per_sec) / untraced_images_per_sec;

    // Fully-traced serving: every submission carries its own trace.
    let on_collector = Arc::new(TraceCollector::new(0));
    let on = closed_loop_streaming(
        backend,
        x,
        expected_logits,
        clients,
        passes,
        max_batch,
        max_delay,
        Some(Arc::clone(&on_collector)),
    );
    let spans_recorded = on_collector.spans_recorded();
    let spans_dropped = on_collector.spans_dropped();
    let trace_tracks = on_collector.tracks().len();
    let chrome = on_collector.chrome_trace_json();
    let chrome_trace_path = match trace_out {
        Some(path) => {
            std::fs::write(&path, &chrome).expect("write --trace-out file");
            path
        }
        None => String::new(),
    };

    ObservabilityResult {
        rounds,
        engine_baseline_images_per_sec,
        engine_traced_images_per_sec,
        tracing_on_overhead_frac,
        logits_match_with_tracing,
        streaming_off_images_per_sec,
        streaming_off_delta_frac,
        streaming_on_images_per_sec: on.metrics.images_per_sec,
        streaming_on_matches: on.matches_batched,
        spans_recorded,
        spans_dropped,
        trace_tracks,
        chrome_trace_bytes: chrome.len(),
        chrome_trace_path,
    }
}

/// `--trace-out <path>` / `--trace-out=<path>` from the process arguments
/// (cargo strips everything before `--`).
fn trace_out_path() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace-out" {
            return args.next();
        }
        if let Some(path) = arg.strip_prefix("--trace-out=") {
            return Some(path.to_string());
        }
    }
    None
}
