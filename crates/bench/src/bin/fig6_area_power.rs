//! Regenerates **Figure 6**: normalized PE-array area and power for the
//! three processor configurations — Base (T2FSNN-on-SpinalFlow: per-layer
//! SRAM kernel decoders + multiplier PEs), I (CAT: shared-LUT decoder),
//! I+II (CAT + log-domain PEs).
//!
//! Paper numbers: I saves 12.7 % area / 14.7 % power; I+II saves a further
//! 8.1 % / 8.6 %. The savings here are *computed* from the component model,
//! not hard-coded (see `snn_hw::cost`).
//!
//! Run: `cargo run -p snn-bench --bin fig6_area_power`

use snn_hw::{AreaPowerModel, ProcessorConfig};

fn main() {
    let model = AreaPowerModel::cmos28();
    let configs = [
        ("Base", ProcessorConfig::baseline()),
        ("I", ProcessorConfig::with_cat()),
        ("I+II", ProcessorConfig::proposed()),
    ];

    println!("# Figure 6: PE array area & power (normalized to Base)");
    println!(
        "{:>6} {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10}",
        "config", "area_PE", "area_dec", "area_tot", "pow_PE", "pow_dec", "pow_tot"
    );
    let mut prev_area = None;
    let mut prev_pow = None;
    for (name, config) in &configs {
        let a = model.area(config);
        let p = model.power(config);
        println!(
            "{:>6} {:>10.4} {:>10.4} {:>10.4} | {:>10.4} {:>10.4} {:>10.4}",
            name,
            a.pe,
            a.decoder,
            a.total(),
            p.pe,
            p.decoder,
            p.total()
        );
        if let (Some(pa), Some(pp)) = (prev_area, prev_pow) {
            println!(
                "       savings vs previous: area {:.1} %  power {:.1} %",
                (pa - a.total()) * 100.0,
                (pp - p.total()) * 100.0
            );
        }
        prev_area = Some(a.total());
        prev_pow = Some(p.total());
    }
    println!();
    println!("# paper: I = -12.7 % area / -14.7 % power; I+II additional -8.1 % / -8.6 %");
    println!(
        "# absolute (proposed): chip area {:.4} mm2 (paper 0.9102), power {:.1} mW (paper 67.3)",
        model.chip_area_mm2(&ProcessorConfig::proposed()),
        model.chip_power_mw(&ProcessorConfig::proposed())
    );
}
