//! Regenerates the right panel of **Figure 1**: the layer-pipelined
//! execution staircase of kernel-based TTFS coding — each layer integrates
//! for one window `T` and fires during the next, so latency is `T·(L+1)`.
//!
//! Run: `cargo run -p snn-bench --bin fig1_pipeline`

use snn_sim::PipelineSchedule;

fn main() {
    for (label, layers, window) in [
        ("VGG-16, T=24 (this work)", 16u32, 24u32),
        ("VGG-16, T=48 (this work)", 16, 48),
        ("VGG-16, T=80 (T2FSNN, no early firing)", 16, 80),
    ] {
        let s = PipelineSchedule::new(layers, window);
        println!("# Figure 1 pipeline: {label}");
        println!("# rows = layers; columns = global windows of {window} timesteps");
        println!("# I = integration (decode) phase, F = fire (encode) phase");
        for (l, row) in s.staircase().iter().enumerate() {
            println!("layer {:>2}: {row}", l + 1);
        }
        println!("latency: {} timesteps (Table 2)", s.latency());
        println!();
    }
}
