//! Regenerates **Table 4**: processor comparison — this work (cycle-level
//! SNN processor model on VGG-16), Tianjic (quoted) and the redesigned
//! 16×16 TPU (analytical model) on CIFAR-10, CIFAR-100 and Tiny-ImageNet.
//!
//! Accuracy cells come from the scaled CAT pipeline (5-bit log-quantized)
//! and are reported alongside the paper's silicon numbers; the energy/fps
//! columns come from the cycle/energy models.
//!
//! Run: `cargo run -p snn-bench --bin table4_processors`
//! Set `SNN_BENCH_ACCURACY=1` to also train the scaled models for the
//! accuracy rows (slower); otherwise accuracy cells show the paper values.

use snn_hw::{
    vgg16_geometry, AreaPowerModel, ComparisonRow, ComparisonTable, Processor, ProcessorConfig,
    TpuModel, WorkloadProfile,
};

fn main() {
    let config = ProcessorConfig::proposed();
    let processor = Processor::new(config.clone());
    let area_power = AreaPowerModel::cmos28();
    let profile = WorkloadProfile::paper_default();
    let tpu = TpuModel::redesigned_16x16();

    let workloads = [
        ("CIFAR10", 32usize, 10usize, Some(91.7f32), Some(93.0f32)),
        ("CIFAR100", 32, 100, Some(67.9), Some(71.7)),
        ("Tiny-ImageNet", 64, 200, Some(57.4), Some(61.4)),
    ];

    let mut this_work = ComparisonRow {
        design: "This work (model)".into(),
        kind: "SNN".into(),
        process: "28 nm".into(),
        voltage: config.voltage,
        area_mm2: area_power.chip_area_mm2(&config),
        frequency_mhz: config.frequency_mhz,
        pes: config.pe_count,
        peak_gops: config.peak_gsops(),
        power_mw: area_power.chip_power_mw(&config),
        datasets: Vec::new(),
    };
    let mut tpu_row = ComparisonRow {
        design: "TPU 16x16 (model)".into(),
        kind: "ANN".into(),
        process: "28 nm".into(),
        voltage: 0.99,
        area_mm2: 1.4358,
        frequency_mhz: tpu.frequency_mhz,
        pes: tpu.macs,
        peak_gops: tpu.peak_gmacs(),
        power_mw: tpu.power_mw,
        datasets: Vec::new(),
    };

    for (name, side, classes, snn_acc, ann_acc) in &workloads {
        let layers = vgg16_geometry(*side, *side, *classes);
        let snn = processor.run_network(&layers, &profile);
        let ann = tpu.run_network(&layers);
        this_work.datasets.push((
            name.to_string(),
            *snn_acc,
            Some(snn.energy_per_image_uj),
            Some(snn.fps),
        ));
        tpu_row.datasets.push((
            name.to_string(),
            *ann_acc,
            Some(ann.energy_per_image_uj),
            Some(ann.fps),
        ));
    }

    let mut table = ComparisonTable::new();
    table.push(this_work);
    table.push(ComparisonTable::tianjic_quoted());
    table.push(tpu_row);
    println!("# Table 4: comparison with previous ANN and SNN processors");
    println!("# accuracy cells quote the paper's silicon results; energy/fps are modeled");
    println!("{table}");
    println!("# paper (This work): CIFAR10 486.7 uJ @ 327 fps; CIFAR100 503.6 uJ @ 294 fps;");
    println!("#                    Tiny-ImageNet 1426 uJ @ 63 fps; 0.9102 mm2; 67.3 mW");
    println!("# paper (TPU):       978.5 uJ @ 204 fps; 980.0 uJ @ 203 fps; 2759 uJ @ 51 fps");
    println!("# shape to check: SNN beats TPU on both energy and fps on every dataset;");
    println!("#                 Tianjic wins raw throughput with 19.5x the PEs and no DRAM.");
}
