//! Regenerates **Figure 3**: ANN test accuracy during CAT training for
//! different φ_TTFS switch epochs. The paper's finding: switching while the
//! learning rate is still high (before the last LR step) crashes training;
//! switching after the LR has decayed to its final value is stable.
//!
//! The epoch axis is scaled (paper: 200 epochs, switches {40, 90, 100, 170,
//! 180}; here the same fractions of the scaled budget).
//!
//! Run: `cargo run -p snn-bench --bin fig3_switch_epoch --release`

use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_bench::{scaled_dataset, scaled_deep_cnn, Scale};
use snn_data::DatasetSpec;
use snn_nn::LrSchedule;
use ttfs_core::{train_with_cat, Base2Kernel, CatComponents, CatSchedule, PhiTtfs};

fn main() {
    let scale = Scale::from_env();
    let epochs = scale.epochs() * 2; // Fig. 3 needs room around the LR steps
    let phi = PhiTtfs::new(Base2Kernel::new(4.0, 1.0), 24);

    // Paper switch epochs as fractions of 200.
    let switch_fracs = [0.2f32, 0.45, 0.5, 0.85, 0.9];
    let lr = LrSchedule::paper_scaled(epochs);

    for (name, spec) in [
        ("cifar100-like", DatasetSpec::cifar100_like()),
        ("tiny-imagenet-like", DatasetSpec::tiny_imagenet_like()),
    ] {
        println!("# Figure 3 ({name}): test accuracy per epoch, one column per switch epoch");
        let data = scaled_dataset(&spec, scale, 31);
        let mut columns = Vec::new();
        let mut switch_epochs = Vec::new();
        for &frac in &switch_fracs {
            let ttfs_from = ((epochs as f32 * frac) as usize).max(1);
            switch_epochs.push(ttfs_from);
            let schedule = CatSchedule::new(
                epochs,
                (epochs / 20).max(1),
                ttfs_from,
                CatComponents::full(),
                phi,
                lr.clone(),
            )
            .expect("scaled switch epochs are ordered");
            let mut rng = StdRng::seed_from_u64(7);
            let mut net = scaled_deep_cnn(
                scale.image_side(),
                scale.classes_for(spec.classes),
                &mut rng,
            );
            let log = train_with_cat(
                &mut net,
                &schedule,
                data.train_images(),
                data.train_labels(),
                data.test_images(),
                data.test_labels(),
                32,
                &mut rng,
            )
            .expect("training run");
            columns.push(log);
        }
        print!("{:>6}", "epoch");
        for (&frac, &se) in switch_fracs.iter().zip(&switch_epochs) {
            print!(" {:>12}", format!("sw@{se}({:.0}%)", frac * 100.0));
        }
        println!();
        for e in 0..epochs {
            print!("{e:>6}");
            for log in &columns {
                print!(" {:>12.4}", log.epochs[e].test_accuracy);
            }
            println!();
        }
        println!();
        for (log, &se) in columns.iter().zip(&switch_epochs) {
            let lr_at_switch = lr.lr_at(se);
            println!(
                "# switch@{se}: lr_at_switch={lr_at_switch:.0e} final={:.4} best={:.4} crashed={}",
                log.final_test_accuracy(),
                log.best_test_accuracy(),
                log.crashed(0.05)
            );
        }
        println!("# paper shape: early switches (lr > 1e-3) crash; late switches (lr <= 1e-4) are stable");
        println!();
    }
}
