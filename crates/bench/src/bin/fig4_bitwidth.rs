//! Regenerates **Figure 4**: SNN accuracy vs weight bit width (4–8) for log
//! bases a_w ∈ {2^−1, 2^−1/2, 2^−1/4} under post-training logarithmic
//! quantization, at kernel parameters (T=24, τ=4) and (T=48, τ=8), on the
//! CIFAR-100 stand-in.
//!
//! Expected shape: accuracy saturates to the fp32 line as bits grow; the
//! finer base 2^−1/2 recovers fp32 accuracy at 5 bits (the paper's chosen
//! configuration); the coarse base 2^−1 needs more bits.
//!
//! Run: `cargo run -p snn-bench --bin fig4_bitwidth --release`

use snn_bench::{run_pipeline, scaled_dataset, Scale};
use snn_data::DatasetSpec;
use snn_logquant::{LogBase, LogQuantizer};
use ttfs_core::{CatComponents, SnnLayer, SnnModel};

/// Quantizes every weighted layer of a converted model in place (per-layer
/// FSR, like the paper's post-training flow).
fn quantize_model(model: &SnnModel, base: LogBase, bits: u8) -> SnnModel {
    let mut q = model.clone();
    for layer in q.layers_mut() {
        match layer {
            SnnLayer::Conv { weight, .. } | SnnLayer::Dense { weight, .. } => {
                if let Ok(quantizer) = LogQuantizer::fit(base, bits, weight.as_slice()) {
                    *weight = quantizer.quantize_tensor(weight);
                }
            }
            _ => {}
        }
    }
    q
}

fn main() {
    let scale = Scale::from_env();
    let spec = DatasetSpec::cifar100_like();
    let bases = [
        LogBase::pow2(),
        LogBase::inv_sqrt2(),
        LogBase::inv_4th_root2(),
    ];

    for (window, tau) in [(24u32, 4.0f32), (48, 8.0)] {
        println!("# Figure 4: accuracy vs weight bit width (T={window}, tau={tau}, CIFAR100-like)");
        let data = scaled_dataset(&spec, scale, 404);
        let r = run_pipeline(
            &data,
            CatComponents::full(),
            window,
            tau,
            scale.epochs(),
            99,
        )
        .expect("pipeline");
        let fp32 = r.snn_accuracy * 100.0;
        println!("# fp32 reference: {fp32:.2} %");
        print!("{:>6}", "bits");
        for b in &bases {
            print!(" {:>14}", b.label());
        }
        println!();
        for bits in 4u8..=8 {
            print!("{bits:>6}");
            for base in &bases {
                let q = quantize_model(&r.model, *base, bits);
                let acc = q
                    .accuracy(data.test_images(), data.test_labels())
                    .expect("quantized eval")
                    * 100.0;
                print!(" {acc:>14.2}");
            }
            println!();
        }
        println!("# paper pick: 5-bit, aw=2^-1/2 (accuracy within ~1 pt of fp32)");
        println!();
    }
}
