//! Regenerates **Table 2**: the proposed CAT (base-2, shared kernel) versus
//! the T2FSNN baseline (base-e, per-layer tuned kernels, early firing).
//! Columns: kernel base, window T, τ, pipeline latency and accuracy per
//! dataset.
//!
//! Expected shape: T2FSNN-with-early-firing has lower latency at T=80 than
//! CAT at T=48, but CAT at T=24 beats it on latency while keeping accuracy;
//! CAT accuracy ≥ T2FSNN accuracy at matched conditions.
//!
//! Run: `cargo run -p snn-bench --bin table2_t2fsnn --release`

use snn_bench::{run_pipeline, scaled_dataset, Scale};
use snn_data::DatasetSpec;
use ttfs_core::t2fsnn::T2fsnnModel;
use ttfs_core::{CatComponents, ExpKernel};

fn main() {
    let scale = Scale::from_env();
    let datasets = [
        DatasetSpec::cifar10_like(),
        DatasetSpec::cifar100_like(),
        DatasetSpec::tiny_imagenet_like(),
    ];

    // Baseline T2FSNN: train the ANN *without* conversion awareness (clip
    // only — T2FSNN trains a plain ANN), convert, then tune per-layer
    // exponential kernels post hoc.
    println!("# Table 2: comparison with T2FSNN (scaled reproduction)");
    println!(
        "{:>22} {:>5} {:>4} {:>5} {:>8} {:>12} {:>12} {:>12}",
        "method",
        "base",
        "T",
        "tau",
        "latency",
        datasets[0].name,
        datasets[1].name,
        datasets[2].name
    );

    // --- T2FSNN rows (base e, T=80, tau=20, early firing) ---
    let mut t2_acc = Vec::new();
    let mut t2_latency = 0u32;
    for (di, spec) in datasets.iter().enumerate() {
        let data = scaled_dataset(spec, scale, 200 + di as u64);
        // Plain (non-conversion-aware) training ~ component I only.
        match run_pipeline(
            &data,
            CatComponents::clip_only(),
            80,
            11.54,
            scale.epochs(),
            17,
        ) {
            Ok(r) => {
                let mut t2 = T2fsnnModel::new(&r.model, ExpKernel::t2fsnn_default(), 80);
                // Post-conversion kernel tuning on a training slice.
                let calib = data.train_images();
                let n = 32.min(calib.dims()[0]);
                let sample_len = calib.len() / calib.dims()[0];
                let mut dims = calib.dims().to_vec();
                dims[0] = n;
                let calib = snn_tensor::Tensor::from_vec(
                    calib.as_slice()[..n * sample_len].to_vec(),
                    &dims,
                )
                .expect("calibration slice");
                t2.tune_kernels(&calib).expect("kernel tuning");
                t2.set_early_firing(true);
                t2_latency = t2.latency_timesteps();
                let acc = t2
                    .accuracy(data.test_images(), data.test_labels())
                    .expect("t2fsnn eval");
                t2_acc.push(acc * 100.0);
            }
            Err(e) => {
                eprintln!("t2fsnn pipeline failed: {e}");
                t2_acc.push(f32::NAN);
            }
        }
    }
    println!(
        "{:>22} {:>5} {:>4} {:>5} {:>8} {:>12.2} {:>12.2} {:>12.2}",
        "T2FSNN (early fire)", "e", 80, 20, t2_latency, t2_acc[0], t2_acc[1], t2_acc[2]
    );

    // --- CAT rows (base 2, shared kernel) ---
    for (window, tau) in [(48u32, 8.0f32), (24, 4.0)] {
        let mut accs = Vec::new();
        let mut latency = 0u32;
        for (di, spec) in datasets.iter().enumerate() {
            let data = scaled_dataset(spec, scale, 200 + di as u64);
            match run_pipeline(
                &data,
                CatComponents::full(),
                window,
                tau,
                scale.epochs(),
                17,
            ) {
                Ok(r) => {
                    latency = r.model.latency_timesteps();
                    accs.push(r.snn_accuracy * 100.0);
                }
                Err(e) => {
                    eprintln!("cat pipeline failed: {e}");
                    accs.push(f32::NAN);
                }
            }
        }
        println!(
            "{:>22} {:>5} {:>4} {:>5} {:>8} {:>12.2} {:>12.2} {:>12.2}",
            "This work (CAT)", "2", window, tau, latency, accs[0], accs[1], accs[2]
        );
    }
    println!();
    println!("# latency model: T2FSNN = T(L+1)/2 (early firing); CAT = T(L+1)");
    println!("# paper: at T=24 CAT has both lower latency and higher accuracy than T2FSNN@80");
}
