//! Regenerates **Figure 2**: the CAT activation functions (ReLU, φ_Clip,
//! φ_TTFS) and their data-representation error against the SNN coding, for
//! the paper's parameters T = 24, τ = 4, θ₀ = 1.
//!
//! Run: `cargo run -p snn-bench --bin fig2_activations`

use snn_nn::{ActivationFn, Relu};
use ttfs_core::{Base2Kernel, PhiClip, PhiTtfs, TtfsKernel};

fn main() {
    let kernel = Base2Kernel::paper_default();
    let window = 24u32;
    let phi_ttfs = PhiTtfs::new(kernel, window);
    let phi_clip = PhiClip::new(1.0);
    let relu = Relu;

    // What the SNN represents after encode/decode of a value v.
    let snn_of = |v: f32| match kernel.encode(v, window) {
        Some(t) => kernel.decode(t),
        None => 0.0,
    };

    println!("# Figure 2 (a) activations and (b) error vs SNN coding");
    println!("# T=24 tau=4 theta0=1");
    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>10} {:>10} {:>10}",
        "x", "relu", "clip", "ttfs", "err_relu", "err_clip", "err_ttfs"
    );
    let mut max_err = [0.0f32; 3];
    let mut mean_err = [0.0f32; 3];
    let steps = 121;
    for i in 0..steps {
        let x = i as f32 * 0.01; // 0 .. 1.2 like the figure
        let vals = [relu.value(x), phi_clip.value(x), phi_ttfs.value(x)];
        let errs: Vec<f32> = vals.iter().map(|&v| (v - snn_of(v)).abs()).collect();
        for (k, &e) in errs.iter().enumerate() {
            max_err[k] = max_err[k].max(e);
            mean_err[k] += e / steps as f32;
        }
        println!(
            "{:>6.2} {:>9.4} {:>9.4} {:>9.4} {:>10.5} {:>10.5} {:>10.5}",
            x, vals[0], vals[1], vals[2], errs[0], errs[1], errs[2]
        );
    }
    println!();
    println!("# summary (paper claim: TTFS activation has zero error)");
    for (name, k) in [("relu", 0usize), ("clip", 1), ("ttfs", 2)] {
        println!(
            "{name:>6}: mean_err={:.5} max_err={:.5}",
            mean_err[k], max_err[k]
        );
    }
    assert!(max_err[2] < 1e-6, "phi_TTFS must be representation-exact");
}
