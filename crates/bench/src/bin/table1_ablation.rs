//! Regenerates **Table 1**: CAT component ablation — SNN accuracy and
//! conversion loss (`acc_SNN − acc_ANN`) for component sets I, I+II,
//! I+II+III across kernel parameters (T/τ ∈ {48/8, 24/4, 12/2}) and the
//! three datasets.
//!
//! Expected shape (the paper's finding): conversion loss shrinks monotonically
//! as components are added, and shrinks with larger T/τ; with I+II+III the
//! loss is ≈ 0 at every setting.
//!
//! Run: `cargo run -p snn-bench --bin table1_ablation --release`
//! Scale with `SNN_BENCH_SCALE=quick|default|full`.

use snn_bench::{run_pipeline, scaled_dataset, table1_cell, Scale};
use snn_data::DatasetSpec;
use ttfs_core::CatComponents;

fn main() {
    let scale = Scale::from_env();
    let datasets = [
        DatasetSpec::cifar10_like(),
        DatasetSpec::cifar100_like(),
        DatasetSpec::tiny_imagenet_like(),
    ];
    let params: [(u32, f32); 3] = [(48, 8.0), (24, 4.0), (12, 2.0)];
    let components = [
        CatComponents::clip_only(),
        CatComponents::clip_and_input(),
        CatComponents::full(),
    ];

    println!("# Table 1: accuracies (conversion losses) of CAT");
    println!(
        "# scaled reproduction: synthetic datasets, scaled CNN, {} epochs",
        scale.epochs()
    );
    println!(
        "{:>9} {:>7} {:>18} {:>18} {:>18}",
        "method", "T/tau", datasets[0].name, datasets[1].name, datasets[2].name
    );

    for comp in &components {
        for (window, tau) in &params {
            let mut cells = Vec::new();
            for (di, spec) in datasets.iter().enumerate() {
                let data = scaled_dataset(spec, scale, 100 + di as u64);
                match run_pipeline(&data, *comp, *window, *tau, scale.epochs(), 42) {
                    Ok(r) => cells.push(table1_cell(r.snn_accuracy, r.conversion_loss())),
                    Err(e) => cells.push(format!("error: {e}")),
                }
            }
            println!(
                "{:>9} {:>7} {:>18} {:>18} {:>18}",
                comp.label(),
                format!("{}/{}", window, tau),
                cells[0],
                cells[1],
                cells[2]
            );
        }
    }
    println!();
    println!(
        "# paper shape: loss(I) > loss(I+II) > loss(I+II+III) ~ 0; loss grows as T/tau shrink"
    );
}
