//! Ablation / extension: quantization-aware training vs the paper's
//! post-training quantization. §5 states the accuracy gap to the ANN
//! baseline "can be improved if the quantization aware training is applied
//! instead of post-training quantization" — this harness measures that.
//!
//! Run: `cargo run -p snn-bench --bin ablation_qat --release`

use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_bench::{scaled_cnn, scaled_dataset, Scale};
use snn_data::DatasetSpec;
use snn_logquant::{LogBase, QatTrainer};
use snn_nn::{evaluate, train_epoch, Sgd, TrainConfig};

fn main() {
    let scale = Scale::from_env();
    let spec = DatasetSpec::cifar100_like();
    let data = scaled_dataset(&spec, scale, 77);
    let classes = scale.classes_for(spec.classes);
    let config = TrainConfig {
        batch_size: 32,
        shuffle: true,
    };
    let epochs = scale.epochs();

    println!("# Ablation: post-training quantization (PTQ) vs quantization-aware training (QAT)");
    println!(
        "# CIFAR100-like stand-in, {} epochs, log base 2^-1/2",
        epochs
    );
    println!(
        "{:>6} {:>10} {:>10} {:>10}",
        "bits", "fp32 %", "PTQ %", "QAT %"
    );

    // Shared fp32 baseline.
    let mut rng = StdRng::seed_from_u64(1);
    let mut fp_net = scaled_cnn(scale.image_side(), classes, &mut rng);
    let mut opt = Sgd::new(0.05, 0.9, 5e-4);
    for _ in 0..epochs {
        train_epoch(
            &mut fp_net,
            &mut opt,
            data.train_images(),
            data.train_labels(),
            &config,
            &mut rng,
        )
        .expect("fp training");
    }
    let fp_acc =
        evaluate(&mut fp_net, data.test_images(), data.test_labels(), 32).expect("fp eval");

    for bits in [3u8, 4, 5] {
        let trainer = QatTrainer::new(LogBase::inv_sqrt2(), bits);

        // PTQ: quantize the trained fp32 network.
        let mut ptq_net = fp_net.clone();
        trainer.finalize(&mut ptq_net).expect("ptq finalize");
        let ptq_acc =
            evaluate(&mut ptq_net, data.test_images(), data.test_labels(), 32).expect("ptq eval");

        // QAT: fine-tune the fp32 model with fake quantization (the usual
        // QAT recipe — start from the converged full-precision weights).
        let mut rng = StdRng::seed_from_u64(1);
        let mut qat_net = fp_net.clone();
        let mut opt = Sgd::new(0.005, 0.9, 5e-4);
        for _ in 0..epochs {
            trainer
                .train_epoch(
                    &mut qat_net,
                    &mut opt,
                    data.train_images(),
                    data.train_labels(),
                    &config,
                    &mut rng,
                )
                .expect("qat training");
        }
        trainer.finalize(&mut qat_net).expect("qat finalize");
        let qat_acc =
            evaluate(&mut qat_net, data.test_images(), data.test_labels(), 32).expect("qat eval");

        println!(
            "{:>6} {:>10.2} {:>10.2} {:>10.2}",
            bits,
            fp_acc * 100.0,
            ptq_acc * 100.0,
            qat_acc * 100.0
        );
    }
    println!();
    println!("# expected shape: QAT >= PTQ, gap widening as bits shrink (paper §5 claim)");
}
