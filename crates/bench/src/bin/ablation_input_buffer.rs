//! Ablation: the 48 KB input buffer the paper adds over SpinalFlow "for
//! reducing the number of DRAM accesses by increasing input reuse" (§4.1).
//! Without it, the sorted input spikes are refetched from DRAM on every
//! PE-array pass.
//!
//! Run: `cargo run -p snn-bench --bin ablation_input_buffer`

use snn_hw::{vgg16_geometry, Processor, ProcessorConfig, WorkloadProfile};

fn main() {
    let profile = WorkloadProfile::paper_default();
    println!("# Ablation: 48 KB input buffer (input reuse) vs none (SpinalFlow)");
    println!(
        "{:<16} {:>14} {:>14} {:>12} {:>10}",
        "workload", "with 48KB (uJ)", "without (uJ)", "DRAM delta", "saving %"
    );
    for (name, side, classes) in [
        ("CIFAR10", 32usize, 10usize),
        ("CIFAR100", 32, 100),
        ("Tiny-ImageNet", 64, 200),
    ] {
        let layers = vgg16_geometry(side, side, classes);
        let with = Processor::new(ProcessorConfig::proposed()).run_network(&layers, &profile);
        let without =
            Processor::new(ProcessorConfig::without_input_buffer()).run_network(&layers, &profile);
        let dram_with: f64 = with.layers.iter().map(|l| l.dram_energy_uj).sum();
        let dram_without: f64 = without.layers.iter().map(|l| l.dram_energy_uj).sum();
        println!(
            "{:<16} {:>14.1} {:>14.1} {:>12.1} {:>9.1} %",
            name,
            with.energy_per_image_uj,
            without.energy_per_image_uj,
            dram_without - dram_with,
            (1.0 - with.energy_per_image_uj / without.energy_per_image_uj) * 100.0
        );
    }
    println!();
    println!("# design-choice check: the buffer pays for itself through DRAM traffic");
}
