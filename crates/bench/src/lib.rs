//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper (see DESIGN.md §4 for the index).
//!
//! The paper's experiments train VGG-16 on CIFAR/Tiny-ImageNet for 200 GPU
//! epochs; this harness substitutes scaled CNNs on synthetic datasets (see
//! DESIGN.md §2) whose *relative* behaviour — ablation ordering, conversion
//! loss trends, latency ratios — is what the binaries reproduce. Scale is
//! controlled by the `SNN_BENCH_SCALE` environment variable (`quick`,
//! `default` or `full`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_data::{DatasetSpec, SyntheticDataset};
use snn_nn::{
    ActivationLayer, BatchNorm2d, Conv2dLayer, DenseLayer, Flatten, Layer, MaxPool2dLayer, Relu,
    Sequential,
};
use snn_tensor::Conv2dSpec;
use ttfs_core::{
    convert, normalize_output_layer, train_with_cat, Base2Kernel, CatComponents, CatSchedule,
    CatTrainLog, ConvertError, PhiTtfs, SnnModel,
};

/// Scale of the experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smallest runnable configuration (CI smoke).
    Quick,
    /// Default: minutes-per-table on one core.
    Default,
    /// Larger runs for tighter statistics.
    Full,
}

impl Scale {
    /// Reads `SNN_BENCH_SCALE` (defaults to `Default`).
    pub fn from_env() -> Self {
        match std::env::var("SNN_BENCH_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            Ok("full") => Scale::Full,
            _ => Scale::Default,
        }
    }

    /// Training epochs for CAT runs.
    pub fn epochs(&self) -> usize {
        match self {
            Scale::Quick => 10,
            Scale::Default => 20,
            Scale::Full => 40,
        }
    }

    /// (train, test) samples **per class**.
    pub fn samples_per_class(&self) -> (usize, usize) {
        match self {
            Scale::Quick => (16, 8),
            Scale::Default => (24, 10),
            Scale::Full => (40, 16),
        }
    }

    /// Scaled class count standing in for a paper dataset's class count
    /// (10 → 10, 100 → 20, 200 → 40): keeps the relative difficulty
    /// ordering while leaving per-class sample counts trainable.
    pub fn classes_for(&self, paper_classes: usize) -> usize {
        match paper_classes {
            c if c <= 10 => 10,
            c if c <= 100 => 20,
            _ => 40,
        }
    }

    /// Image side length (square RGB inputs).
    pub fn image_side(&self) -> usize {
        match self {
            Scale::Quick => 8,
            Scale::Default => 8,
            Scale::Full => 16,
        }
    }
}

/// Builds the scaled dataset standing in for a paper dataset.
pub fn scaled_dataset(base: &DatasetSpec, scale: Scale, seed: u64) -> SyntheticDataset {
    let classes = scale.classes_for(base.classes);
    let (train_pc, test_pc) = scale.samples_per_class();
    let side = scale.image_side();
    let spec = base
        .clone()
        .with_classes(classes)
        .with_samples(train_pc * classes, test_pc * classes)
        .with_geometry(3, side, side);
    SyntheticDataset::generate(&spec, seed)
}

/// Builds the scaled VGG-style CNN (conv-BN-act ×2 with pooling, then a
/// two-layer classifier) for `side`×`side` RGB inputs.
pub fn scaled_cnn(side: usize, classes: usize, rng: &mut StdRng) -> Sequential {
    let act = || Layer::Activation(ActivationLayer::new(Box::new(Relu)));
    let after_pool = side / 2 / 2;
    let flat = 16 * after_pool * after_pool;
    Sequential::new(vec![
        Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(3, 8, 3, 1, 1), rng)),
        Layer::BatchNorm2d(BatchNorm2d::new(8)),
        act(),
        Layer::MaxPool2d(MaxPool2dLayer::new(2, 2)),
        Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(8, 16, 3, 1, 1), rng)),
        Layer::BatchNorm2d(BatchNorm2d::new(16)),
        act(),
        Layer::MaxPool2d(MaxPool2dLayer::new(2, 2)),
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(flat, 64, rng)),
        act(),
        Layer::Dense(DenseLayer::new(64, classes, rng)),
    ])
}

/// Builds a deeper VGG-style CNN (6 conv + 2 dense) used by the Fig. 3
/// harness: training instability from the discrete φ_TTFS compounds with
/// depth, which is the effect Fig. 3 measures.
pub fn scaled_deep_cnn(side: usize, classes: usize, rng: &mut StdRng) -> Sequential {
    let act = || Layer::Activation(ActivationLayer::new(Box::new(Relu)));
    let conv = |i: usize, o: usize, rng: &mut StdRng| {
        Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(i, o, 3, 1, 1), rng))
    };
    let after_pools = side / 2 / 2;
    let flat = 32 * after_pools * after_pools;
    Sequential::new(vec![
        conv(3, 16, rng),
        Layer::BatchNorm2d(BatchNorm2d::new(16)),
        act(),
        conv(16, 16, rng),
        Layer::BatchNorm2d(BatchNorm2d::new(16)),
        act(),
        Layer::MaxPool2d(MaxPool2dLayer::new(2, 2)),
        conv(16, 32, rng),
        Layer::BatchNorm2d(BatchNorm2d::new(32)),
        act(),
        conv(32, 32, rng),
        Layer::BatchNorm2d(BatchNorm2d::new(32)),
        act(),
        Layer::MaxPool2d(MaxPool2dLayer::new(2, 2)),
        conv(32, 32, rng),
        Layer::BatchNorm2d(BatchNorm2d::new(32)),
        act(),
        conv(32, 32, rng),
        Layer::BatchNorm2d(BatchNorm2d::new(32)),
        act(),
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(flat, 64, rng)),
        act(),
        Layer::Dense(DenseLayer::new(64, classes, rng)),
    ])
}

/// Result of one end-to-end CAT + conversion experiment.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Training log (Fig. 3 source).
    pub log: CatTrainLog,
    /// ANN test accuracy after training (with the final-phase activations).
    pub ann_accuracy: f32,
    /// SNN test accuracy after conversion (reference/event-equivalent).
    pub snn_accuracy: f32,
    /// Converted model.
    pub model: SnnModel,
}

impl PipelineResult {
    /// The paper's conversion-loss metric `acc_SNN − acc_ANN` (Table 1).
    pub fn conversion_loss(&self) -> f32 {
        self.snn_accuracy - self.ann_accuracy
    }
}

/// Runs the full pipeline: CAT training on the dataset, ANN evaluation,
/// conversion (BN fusion + output normalization) and SNN evaluation.
///
/// # Errors
///
/// Propagates training and conversion errors.
pub fn run_pipeline(
    data: &SyntheticDataset,
    components: CatComponents,
    window: u32,
    tau: f32,
    epochs: usize,
    seed: u64,
) -> Result<PipelineResult, ConvertError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = data.spec();
    let mut net = scaled_cnn(spec.height, spec.classes, &mut rng);
    let phi = PhiTtfs::new(Base2Kernel::new(tau, 1.0), window);
    let schedule = CatSchedule::paper_scaled(epochs, phi, components);
    let log = train_with_cat(
        &mut net,
        &schedule,
        data.train_images(),
        data.train_labels(),
        data.test_images(),
        data.test_labels(),
        32,
        &mut rng,
    )?;
    let ann_accuracy = log.final_test_accuracy();
    let mut model = convert(&net, *phi.kernel(), window)?;
    // Calibrate the output normalization on a training slice.
    let calib_len = 32.min(data.train_images().dims()[0]);
    let sample_len = data.train_images().len() / data.train_images().dims()[0];
    let mut dims = data.train_images().dims().to_vec();
    dims[0] = calib_len;
    let calib = snn_tensor::Tensor::from_vec(
        data.train_images().as_slice()[..calib_len * sample_len].to_vec(),
        &dims,
    )
    .map_err(snn_nn::NnError::from)?;
    normalize_output_layer(&mut model, &calib)?;
    let snn_accuracy = model.accuracy(data.test_images(), data.test_labels())?;
    Ok(PipelineResult {
        log,
        ann_accuracy,
        snn_accuracy,
        model,
    })
}

/// Formats an accuracy/conversion-loss cell like Table 1: `92.45 (+0.04)`.
pub fn table1_cell(snn_acc: f32, loss: f32) -> String {
    format!("{:.2} ({:+.2})", snn_acc * 100.0, loss * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_default() {
        // Not setting the var in tests; default must be Default.
        assert_eq!(Scale::from_env().epochs(), 20);
    }

    #[test]
    fn scaled_cnn_shapes_compose() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = scaled_cnn(8, 10, &mut rng);
        let x = snn_tensor::Tensor::zeros(&[2, 3, 8, 8]);
        let y = net.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn pipeline_smoke() {
        let data = scaled_dataset(&DatasetSpec::cifar10_like(), Scale::Quick, 3);
        let r = run_pipeline(&data, CatComponents::full(), 24, 4.0, 4, 7).unwrap();
        assert!(r.ann_accuracy >= 0.0 && r.ann_accuracy <= 1.0);
        assert_eq!(r.model.weighted_layers(), 4);
    }

    #[test]
    fn cell_formatting() {
        assert_eq!(table1_cell(0.9245, 0.0004), "92.45 (+0.04)");
        assert_eq!(table1_cell(0.5248, -0.2023), "52.48 (-20.23)");
    }
}
