//! Tests of the spike-trace API (`EventSnn::run_traced`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_nn::{ActivationLayer, Conv2dLayer, DenseLayer, Flatten, Layer, Relu, Sequential};
use snn_sim::{EventSnn, PipelineSchedule};
use snn_tensor::{Conv2dSpec, Tensor};
use ttfs_core::{convert, Base2Kernel};

fn model() -> (EventSnn, usize) {
    let mut rng = StdRng::seed_from_u64(33);
    let net = Sequential::new(vec![
        Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(1, 3, 3, 1, 1), &mut rng)),
        Layer::Activation(ActivationLayer::new(Box::new(Relu))),
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(3 * 4 * 4, 8, &mut rng)),
        Layer::Activation(ActivationLayer::new(Box::new(Relu))),
        Layer::Dense(DenseLayer::new(8, 4, &mut rng)),
    ]);
    let m = convert(&net, Base2Kernel::paper_default(), 24).unwrap();
    let weighted = m.weighted_layers();
    (EventSnn::new(&m), weighted)
}

#[test]
fn trace_has_one_train_per_boundary() {
    let (sim, weighted) = model();
    let x = snn_tensor::uniform(&[1, 1, 4, 4], 0.3, 1.0, &mut StdRng::seed_from_u64(0));
    let (logits, trace) = sim.run_traced(&x).unwrap();
    assert_eq!(logits.dims(), &[1, 4]);
    // input coding + one fire train per *hidden* weighted layer
    assert_eq!(trace.len(), weighted);
}

#[test]
fn trace_times_respect_pipeline_windows() {
    let (sim, weighted) = model();
    let schedule = PipelineSchedule::new(weighted as u32, 24);
    let x = snn_tensor::uniform(&[1, 1, 4, 4], 0.3, 1.0, &mut StdRng::seed_from_u64(1));
    let (_, trace) = sim.run_traced(&x).unwrap();
    // Input spikes live in the first window.
    for &(_, t) in &trace[0] {
        assert!(t <= 24);
    }
    // Layer l's fire spikes live in its fire window.
    for (l, train) in trace.iter().enumerate().skip(1) {
        let (start, end) = schedule.fire_window((l - 1) as u32);
        for &(_, t) in train {
            assert!(
                t >= start && t <= end,
                "layer {l} spike at {t} outside [{start}, {end}]"
            );
        }
    }
}

#[test]
fn traced_logits_match_untraced() {
    let (sim, _) = model();
    let x = snn_tensor::uniform(&[1, 1, 4, 4], 0.3, 1.0, &mut StdRng::seed_from_u64(2));
    let (traced, _) = sim.run_traced(&x).unwrap();
    let (plain, _) = sim.run(&x).unwrap();
    assert!(traced.allclose(&plain, 0.0), "identical execution paths");
}

#[test]
fn run_traced_rejects_batches() {
    let (sim, _) = model();
    let x = Tensor::zeros(&[2, 1, 4, 4]);
    assert!(sim.run_traced(&x).is_err());
}
