//! Property-based tests: the event-driven simulator must agree with the
//! analytic reference on every supported layer shape.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_nn::{
    ActivationLayer, AvgPool2dLayer, Conv2dLayer, DenseLayer, Flatten, Layer, MaxPool2dLayer, Relu,
    Sequential,
};
use snn_sim::EventSnn;
use snn_tensor::{Conv2dSpec, Tensor};
use ttfs_core::{convert, Base2Kernel};

fn check_equivalence(net: Sequential, xs: Vec<f32>, dims: &[usize]) -> Result<(), TestCaseError> {
    let model = convert(&net, Base2Kernel::paper_default(), 24).expect("conversion");
    let x = Tensor::from_vec(xs, dims).expect("sized");
    let sim = EventSnn::new(&model);
    let (event, stats) = sim.run(&x).expect("event run");
    let reference = model.reference_forward(&x).expect("reference");
    let tol = 1e-3 * (1.0 + reference.abs_max());
    prop_assert!(
        event.allclose(&reference, tol),
        "event {:?} vs reference {:?}",
        &event.as_slice()[..event.len().min(4)],
        &reference.as_slice()[..reference.len().min(4)]
    );
    for layer in &stats.layers {
        prop_assert!(layer.output_spikes <= layer.neurons, "TTFS discipline");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conv + max-pool network.
    #[test]
    fn conv_maxpool_equivalence(
        seed in 0u64..64,
        xs in proptest::collection::vec(0.0f32..1.0, 2 * 48),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Sequential::new(vec![
            Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(3, 4, 3, 1, 1), &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::MaxPool2d(MaxPool2dLayer::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(4 * 2 * 2, 3, &mut rng)),
        ]);
        check_equivalence(net, xs, &[2, 3, 4, 4])?;
    }

    /// Conv + average-pool network (exercises scaled virtual spikes).
    #[test]
    fn conv_avgpool_equivalence(
        seed in 0u64..64,
        xs in proptest::collection::vec(0.0f32..1.0, 48),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Sequential::new(vec![
            Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(3, 4, 3, 1, 1), &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::AvgPool2d(AvgPool2dLayer::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(4 * 2 * 2, 3, &mut rng)),
        ]);
        check_equivalence(net, xs, &[1, 3, 4, 4])?;
    }

    /// Strided convolution without padding.
    #[test]
    fn strided_conv_equivalence(
        seed in 0u64..64,
        xs in proptest::collection::vec(0.0f32..1.0, 49),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Sequential::new(vec![
            Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(1, 3, 3, 2, 0), &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(3 * 3 * 3, 2, &mut rng)),
        ]);
        check_equivalence(net, xs, &[1, 1, 7, 7])?;
    }

    /// Deeper stack of dense layers (quantization error compounds but
    /// equivalence must hold exactly).
    #[test]
    fn deep_dense_equivalence(
        seed in 0u64..64,
        xs in proptest::collection::vec(0.0f32..1.0, 10),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = vec![Layer::Flatten(Flatten::new())];
        let mut width = 10usize;
        for _ in 0..4 {
            layers.push(Layer::Dense(DenseLayer::new(width, 8, &mut rng)));
            layers.push(Layer::Activation(ActivationLayer::new(Box::new(Relu))));
            width = 8;
        }
        layers.push(Layer::Dense(DenseLayer::new(width, 3, &mut rng)));
        check_equivalence(Sequential::new(layers), xs, &[1, 1, 2, 5])?;
    }
}
