use snn_tensor::Tensor;
use ttfs_core::{ConvertError, SnnLayer, SnnModel, TtfsKernel};

use crate::{LayerStats, RunStats, SpikeTrain};

/// Event-driven executor for a converted [`SnnModel`].
///
/// Every weighted layer runs the two TTFS phases of the paper's Fig. 1:
/// integration (each incoming spike contributes `w · κ(t) · scale` to the
/// membrane voltages) and fire (membranes race the falling threshold; the
/// first crossing emits the neuron's single spike). The final dense layer
/// skips the fire phase and reads the membrane voltages out as logits.
#[derive(Debug, Clone)]
pub struct EventSnn {
    model: SnnModel,
}

impl EventSnn {
    /// Creates an executor for `model` (the model is cloned; it is a bag of
    /// fused weights).
    pub fn new(model: &SnnModel) -> Self {
        Self {
            model: model.clone(),
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &SnnModel {
        &self.model
    }

    /// Runs a `[N, C, H, W]` batch through the event simulation.
    ///
    /// Returns the decoded logits `[N, classes]` and the accumulated event
    /// statistics.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError`] if the batch does not match the model
    /// geometry.
    pub fn run(&self, images: &Tensor) -> Result<(Tensor, RunStats), ConvertError> {
        let dims = images.dims();
        if dims.len() < 2 {
            return Err(ConvertError::Structure(format!(
                "expected batched input, got {:?}",
                dims
            )));
        }
        let n = dims[0];
        let sample_dims: Vec<usize> = dims[1..].to_vec();
        let sample_len: usize = sample_dims.iter().product();
        let mut stats = crate::phase::new_run_stats(&self.model, n);
        let mut logits_data: Vec<f32> = Vec::new();
        let mut classes = 0usize;

        for s in 0..n {
            let sample = &images.as_slice()[s * sample_len..(s + 1) * sample_len];
            let out = self.run_sample(sample, &sample_dims, &mut stats, None)?;
            classes = out.len();
            logits_data.extend_from_slice(&out);
        }
        let logits = Tensor::from_vec(logits_data, &[n, classes]).map_err(snn_nn::NnError::from)?;
        Ok((logits, stats))
    }

    /// Runs a single sample and returns, besides the logits, the spike
    /// train at every layer boundary (input coding first, then one train
    /// per hidden weighted layer) with times mapped onto the global
    /// pipeline schedule — the raster behind Fig. 1.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError`] if `image` does not match the model
    /// geometry.
    pub fn run_traced(&self, image: &Tensor) -> Result<(Tensor, crate::SpikeRaster), ConvertError> {
        let dims = image.dims();
        if dims.is_empty() || dims[0] != 1 {
            return Err(ConvertError::Structure(format!(
                "run_traced expects a single sample [1, ...], got {:?}",
                dims
            )));
        }
        let schedule =
            crate::PipelineSchedule::new(self.model.weighted_layers() as u32, self.model.window());
        let mut trace: crate::SpikeRaster = Vec::new();
        let sample_dims: Vec<usize> = dims[1..].to_vec();
        let input = self.encode_input(image.as_slice(), &sample_dims);
        // Input coding occupies the first window (layer-0 integration).
        trace.push(input.spikes().iter().map(|s| (s.neuron, s.t)).collect());
        let mut stats = crate::phase::new_run_stats(&self.model, 1);
        let mut hidden_trains: Vec<SpikeTrain> = Vec::new();
        let logits = self.run_sample(
            image.as_slice(),
            &sample_dims,
            &mut stats,
            Some(&mut hidden_trains),
        )?;
        for (layer_idx, train) in hidden_trains.iter().enumerate() {
            trace.push(schedule.globalize_train(layer_idx as u32, train));
        }
        let n_out = logits.len();
        let logits = Tensor::from_vec(logits, &[1, n_out]).map_err(snn_nn::NnError::from)?;
        Ok((logits, trace))
    }

    /// Classification accuracy of the event simulation on a labelled set.
    ///
    /// # Errors
    ///
    /// Propagates geometry errors.
    pub fn accuracy(&self, images: &Tensor, labels: &[usize]) -> Result<f32, ConvertError> {
        let (logits, _) = self.run(images)?;
        let n = logits.dims()[0];
        let c = logits.dims()[1];
        let mut correct = 0usize;
        for (s, &label) in labels.iter().enumerate().take(n) {
            let row = &logits.as_slice()[s * c..(s + 1) * c];
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            if pred == label {
                correct += 1;
            }
        }
        Ok(correct as f32 / n.max(1) as f32)
    }

    fn encode_input(&self, sample: &[f32], dims: &[usize]) -> SpikeTrain {
        crate::phase::encode_input(self.model.kernel(), self.model.window(), sample, dims)
    }

    fn run_sample(
        &self,
        sample: &[f32],
        dims: &[usize],
        stats: &mut RunStats,
        mut fire_tap: Option<&mut Vec<SpikeTrain>>,
    ) -> Result<Vec<f32>, ConvertError> {
        let kernel = *self.model.kernel();
        let weighted = self.model.weighted_layers();
        let mut train = self.encode_input(sample, dims);
        let mut seen = 0usize;
        let mut logits: Option<Vec<f32>> = None;

        for layer in self.model.layers() {
            match layer {
                SnnLayer::Conv { spec, weight, bias } => {
                    let d = train.dims();
                    if d.len() != 3 || d[0] != spec.in_channels {
                        return Err(ConvertError::Structure(format!(
                            "conv expects [{}, H, W] spikes, got {:?}",
                            spec.in_channels, d
                        )));
                    }
                    let (h, w) = (d[1], d[2]);
                    let (oh, ow) = spec.output_hw(h, w);
                    // f64 accumulation with one final f32 rounding: the
                    // same discipline as the reference GEMM, so membrane
                    // voltages match `reference_forward` bit-for-bit and
                    // the fire-phase quantizer sees identical inputs.
                    let mut acc = vec![0.0f64; spec.out_channels * oh * ow];
                    let wd = weight.as_slice();
                    let k = spec.kernel;
                    let mut ops = 0usize;
                    for spike in train.spikes() {
                        let psp = kernel.decode(spike.t) * spike.scale;
                        let ci = spike.neuron / (h * w);
                        let rem = spike.neuron % (h * w);
                        let (iy, ix) = (rem / w, rem % w);
                        for ki in 0..k {
                            let oy_num = iy as isize + spec.padding as isize - ki as isize;
                            if oy_num < 0 || oy_num % spec.stride as isize != 0 {
                                continue;
                            }
                            let oy = (oy_num / spec.stride as isize) as usize;
                            if oy >= oh {
                                continue;
                            }
                            for kj in 0..k {
                                let ox_num = ix as isize + spec.padding as isize - kj as isize;
                                if ox_num < 0 || ox_num % spec.stride as isize != 0 {
                                    continue;
                                }
                                let ox = (ox_num / spec.stride as isize) as usize;
                                if ox >= ow {
                                    continue;
                                }
                                for oc in 0..spec.out_channels {
                                    let widx = ((oc * spec.in_channels + ci) * k + ki) * k + kj;
                                    acc[(oc * oh + oy) * ow + ox] += wd[widx] as f64 * psp as f64;
                                    ops += 1;
                                }
                            }
                        }
                    }
                    let mut vmem: Vec<f32> = acc.into_iter().map(|v| v as f32).collect();
                    for oc in 0..spec.out_channels {
                        let b = bias.as_slice()[oc];
                        for v in &mut vmem[oc * oh * ow..(oc + 1) * oh * ow] {
                            *v += b;
                        }
                    }
                    let layer_stats = &mut stats.layers[seen];
                    layer_stats.input_spikes += train.len();
                    layer_stats.synaptic_ops += ops;
                    layer_stats.neurons += vmem.len();
                    seen += 1;
                    if seen < weighted {
                        train =
                            self.fire_phase(&vmem, vec![spec.out_channels, oh, ow], layer_stats);
                        if let Some(tap) = fire_tap.as_deref_mut() {
                            tap.push(train.clone());
                        }
                    } else {
                        logits = Some(vmem);
                    }
                }
                SnnLayer::Dense { weight, bias } => {
                    let in_f = weight.dims()[1];
                    let out_f = weight.dims()[0];
                    if train.neuron_count() != in_f {
                        return Err(ConvertError::Structure(format!(
                            "dense expects {in_f} input neurons, got {}",
                            train.neuron_count()
                        )));
                    }
                    let mut acc = vec![0.0f64; out_f];
                    let wd = weight.as_slice();
                    let mut ops = 0usize;
                    for spike in train.spikes() {
                        let psp = kernel.decode(spike.t) * spike.scale;
                        for (o, v) in acc.iter_mut().enumerate() {
                            *v += wd[o * in_f + spike.neuron] as f64 * psp as f64;
                        }
                        ops += out_f;
                    }
                    // Round once, then add the bias in f32 — the exact
                    // order of the reference dense path (GEMM then bias).
                    let mut vmem: Vec<f32> = acc.into_iter().map(|v| v as f32).collect();
                    for (v, &b) in vmem.iter_mut().zip(bias.as_slice()) {
                        *v += b;
                    }
                    let layer_stats = &mut stats.layers[seen];
                    layer_stats.input_spikes += train.len();
                    layer_stats.synaptic_ops += ops;
                    layer_stats.neurons += out_f;
                    seen += 1;
                    if seen < weighted {
                        train = self.fire_phase(&vmem, vec![out_f], layer_stats);
                        if let Some(tap) = fire_tap.as_deref_mut() {
                            tap.push(train.clone());
                        }
                    } else {
                        logits = Some(vmem);
                    }
                }
                SnnLayer::MaxPool { spec } => {
                    train = self.max_pool_spikes(&train, spec.window, spec.stride)?;
                }
                SnnLayer::AvgPool { spec } => {
                    train = self.avg_pool_spikes(&train, spec.window, spec.stride)?;
                }
                SnnLayer::Flatten => {
                    train = crate::phase::flatten_spikes(&train);
                }
            }
        }
        logits.ok_or_else(|| ConvertError::Structure("model produced no readout".into()))
    }

    /// Fire (encoding) phase — delegates to the shared
    /// [`crate::phase::fire_phase`] primitive.
    fn fire_phase(&self, vmem: &[f32], dims: Vec<usize>, stats: &mut LayerStats) -> SpikeTrain {
        crate::phase::fire_phase(self.model.kernel(), self.model.window(), vmem, dims, stats)
    }

    fn max_pool_spikes(
        &self,
        train: &SpikeTrain,
        win: usize,
        stride: usize,
    ) -> Result<SpikeTrain, ConvertError> {
        crate::phase::max_pool_spikes(self.model.kernel(), train, win, stride)
    }

    fn avg_pool_spikes(
        &self,
        train: &SpikeTrain,
        win: usize,
        stride: usize,
    ) -> Result<SpikeTrain, ConvertError> {
        crate::phase::avg_pool_spikes(train, win, stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_nn::{
        ActivationLayer, Conv2dLayer, DenseLayer, Flatten, Layer, MaxPool2dLayer, Relu, Sequential,
    };
    use snn_tensor::Conv2dSpec;
    use ttfs_core::{convert, Base2Kernel};

    fn tiny_model(rng: &mut StdRng) -> SnnModel {
        let net = Sequential::new(vec![
            Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(1, 4, 3, 1, 1), rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::MaxPool2d(MaxPool2dLayer::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(4 * 4 * 4, 5, rng)),
        ]);
        convert(&net, Base2Kernel::paper_default(), 24).unwrap()
    }

    #[test]
    fn event_sim_matches_reference_forward() {
        let mut rng = StdRng::seed_from_u64(21);
        let model = tiny_model(&mut rng);
        let sim = EventSnn::new(&model);
        let x = snn_tensor::uniform(&[4, 1, 8, 8], 0.0, 1.0, &mut rng);
        let (event_logits, _) = sim.run(&x).unwrap();
        let reference = model.reference_forward(&x).unwrap();
        assert!(
            event_logits.allclose(&reference, 1e-3),
            "event {:?} vs reference {:?}",
            &event_logits.as_slice()[..5],
            &reference.as_slice()[..5]
        );
    }

    #[test]
    fn ttfs_discipline_holds() {
        let mut rng = StdRng::seed_from_u64(22);
        let model = tiny_model(&mut rng);
        let sim = EventSnn::new(&model);
        let x = snn_tensor::uniform(&[1, 1, 8, 8], 0.0, 1.0, &mut rng);
        let train = sim.encode_input(&x.as_slice()[..64], &[1, 8, 8]);
        assert!(train.is_ttfs());
        assert!(train.len() <= 64);
    }

    #[test]
    fn stats_are_populated() {
        let mut rng = StdRng::seed_from_u64(23);
        let model = tiny_model(&mut rng);
        let sim = EventSnn::new(&model);
        let x = snn_tensor::uniform(&[2, 1, 8, 8], 0.0, 1.0, &mut rng);
        let (_, stats) = sim.run(&x).unwrap();
        assert_eq!(stats.batch, 2);
        assert_eq!(stats.layers.len(), 2);
        assert!(stats.layers[0].input_spikes > 0);
        assert!(stats.layers[0].synaptic_ops > 0);
        assert_eq!(stats.latency_timesteps, 24 * 3);
        assert!(stats.layers[0].encoder_iterations > 0);
    }

    #[test]
    fn zero_input_produces_no_spikes_and_bias_logits() {
        let mut rng = StdRng::seed_from_u64(24);
        let model = tiny_model(&mut rng);
        let sim = EventSnn::new(&model);
        let x = Tensor::zeros(&[1, 1, 8, 8]);
        let (logits, stats) = sim.run(&x).unwrap();
        assert_eq!(stats.layers[0].input_spikes, 0);
        // Logits must equal the reference (pure bias propagation).
        let reference = model.reference_forward(&x).unwrap();
        assert!(logits.allclose(&reference, 1e-4));
    }

    #[test]
    fn accuracy_matches_reference_accuracy() {
        let mut rng = StdRng::seed_from_u64(25);
        let model = tiny_model(&mut rng);
        let sim = EventSnn::new(&model);
        let x = snn_tensor::uniform(&[8, 1, 8, 8], 0.0, 1.0, &mut rng);
        let labels: Vec<usize> = (0..8).map(|i| i % 5).collect();
        let a = sim.accuracy(&x, &labels).unwrap();
        let b = model.accuracy(&x, &labels).unwrap();
        assert!((a - b).abs() < 1e-6);
    }
}
