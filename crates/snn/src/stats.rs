use serde::{Deserialize, Serialize};

/// Event statistics of one weighted layer's execution.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LayerStats {
    /// Input spikes integrated.
    pub input_spikes: usize,
    /// Output spikes emitted by the fire phase.
    pub output_spikes: usize,
    /// Neurons in the layer output.
    pub neurons: usize,
    /// Synaptic operations performed (one per weight touched by a spike —
    /// the "SOP" the paper's GSOP/s throughput counts).
    pub synaptic_ops: usize,
    /// Threshold-comparison iterations of the spike encoder (timesteps the
    /// encoder stepped through before all membranes were reset or the
    /// window ended).
    pub encoder_iterations: usize,
}

impl LayerStats {
    /// Output sparsity: fraction of neurons that fired.
    pub fn output_sparsity(&self) -> f32 {
        self.output_spikes as f32 / self.neurons.max(1) as f32
    }

    /// Accumulates another run's counters into this one.
    pub fn absorb(&mut self, other: &LayerStats) {
        self.input_spikes += other.input_spikes;
        self.output_spikes += other.output_spikes;
        self.neurons += other.neurons;
        self.synaptic_ops += other.synaptic_ops;
        self.encoder_iterations += other.encoder_iterations;
    }
}

/// Event statistics of a full inference run (one batch).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Samples in the batch.
    pub batch: usize,
    /// Per-weighted-layer statistics, summed over the batch.
    pub layers: Vec<LayerStats>,
    /// End-to-end pipeline latency in timesteps (per sample).
    pub latency_timesteps: u32,
}

impl RunStats {
    /// Total spikes across all layer boundaries (including input coding).
    pub fn total_spikes(&self) -> usize {
        self.layers.iter().map(|l| l.output_spikes).sum::<usize>()
            + self.layers.first().map(|l| l.input_spikes).unwrap_or(0)
    }

    /// Total synaptic operations.
    pub fn total_synaptic_ops(&self) -> usize {
        self.layers.iter().map(|l| l.synaptic_ops).sum()
    }

    /// Merges the statistics of another (sub-)batch run over the same
    /// model — used by the runtime's worker pool to combine per-chunk
    /// stats back into one report.
    pub fn absorb(&mut self, other: &RunStats) {
        self.batch += other.batch;
        if self.layers.len() < other.layers.len() {
            self.layers
                .resize(other.layers.len(), LayerStats::default());
        }
        for (mine, theirs) in self.layers.iter_mut().zip(&other.layers) {
            mine.absorb(theirs);
        }
        self.latency_timesteps = self.latency_timesteps.max(other.latency_timesteps);
    }

    /// Mean output sparsity over layers.
    pub fn mean_sparsity(&self) -> f32 {
        if self.layers.is_empty() {
            return 0.0;
        }
        self.layers.iter().map(|l| l.output_sparsity()).sum::<f32>() / self.layers.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_layers() {
        let stats = RunStats {
            batch: 1,
            layers: vec![
                LayerStats {
                    input_spikes: 10,
                    output_spikes: 4,
                    neurons: 8,
                    synaptic_ops: 90,
                    encoder_iterations: 6,
                },
                LayerStats {
                    input_spikes: 4,
                    output_spikes: 2,
                    neurons: 4,
                    synaptic_ops: 16,
                    encoder_iterations: 3,
                },
            ],
            latency_timesteps: 72,
        };
        assert_eq!(stats.total_spikes(), 16);
        assert_eq!(stats.total_synaptic_ops(), 106);
        assert!((stats.mean_sparsity() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn empty_stats() {
        let stats = RunStats::default();
        assert_eq!(stats.total_spikes(), 0);
        assert_eq!(stats.mean_sparsity(), 0.0);
    }
}
