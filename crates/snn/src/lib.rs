//! Event-driven TTFS spiking-network simulator.
//!
//! Executes a converted [`ttfs_core::SnnModel`] the way the paper's
//! processor does: per layer, an **integration (decoding) phase** accumulates
//! each incoming spike's postsynaptic potential `w·κ(t)` into IF-neuron
//! membrane voltages, then a **fire (encoding) phase** converts membrane
//! voltages into at-most-one output spike per neuron via the falling
//! threshold `θ₀·2^(−t/τ)` (Fig. 1 of the paper).
//!
//! The simulator's contract — verified by cross-crate tests — is that the
//! decoded logits equal [`ttfs_core::SnnModel::reference_forward`] up to
//! float summation order. That equality *is* the paper's "zero conversion
//! loss" claim (Table 1, I+II+III).
//!
//! Besides outputs it produces [`RunStats`]: spike counts, synaptic-operation
//! counts and fire-phase iteration counts per layer — the event statistics
//! the hardware model in `snn-hw` charges energy to.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use snn_nn::{ActivationLayer, DenseLayer, Flatten, Layer, Relu, Sequential};
//! use snn_sim::EventSnn;
//! use snn_tensor::Tensor;
//! use ttfs_core::{convert, Base2Kernel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let net = Sequential::new(vec![
//!     Layer::Flatten(Flatten::new()),
//!     Layer::Dense(DenseLayer::new(16, 4, &mut rng)),
//!     Layer::Activation(ActivationLayer::new(Box::new(Relu))),
//!     Layer::Dense(DenseLayer::new(4, 2, &mut rng)),
//! ]);
//! let model = convert(&net, Base2Kernel::paper_default(), 24)?;
//! let sim = EventSnn::new(&model);
//! let (logits, stats) = sim.run(&Tensor::full(&[1, 1, 4, 4], 0.5))?;
//! assert_eq!(logits.dims(), &[1, 2]);
//! assert!(stats.total_spikes() > 0);
//! # Ok(())
//! # }
//! ```

mod network;
pub mod phase;
mod schedule;
mod spike;
mod stats;

pub use network::EventSnn;
pub use schedule::PipelineSchedule;
pub use spike::{Spike, SpikeRaster, SpikeTrain};
pub use stats::{LayerStats, RunStats};
