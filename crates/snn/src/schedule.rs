use serde::{Deserialize, Serialize};

use crate::SpikeTrain;

/// The layer-pipelined execution schedule of kernel-based TTFS coding
/// (Fig. 1 of the paper, right panel): layer `l` *integrates* during global
/// window `[l·T, (l+1)·T)` and *fires* during `[(l+1)·T, (l+2)·T)`, so
/// consecutive images pipeline through the layer stack one window apart.
///
/// # Example
///
/// ```
/// use snn_sim::PipelineSchedule;
///
/// let s = PipelineSchedule::new(16, 24); // VGG-16, T = 24
/// assert_eq!(s.latency(), 408);          // Table 2
/// assert_eq!(s.fire_window(0), (24, 48));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineSchedule {
    weighted_layers: u32,
    window: u32,
}

impl PipelineSchedule {
    /// Creates a schedule for `weighted_layers` spiking layers with fire
    /// window `window`.
    pub fn new(weighted_layers: u32, window: u32) -> Self {
        Self {
            weighted_layers,
            window,
        }
    }

    /// Fire window T.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Global timestep range `[start, end)` in which the *input image*
    /// is presented as spikes.
    pub fn input_window(&self) -> (u32, u32) {
        (0, self.window)
    }

    /// Global timestep range `[start, end)` of layer `l`'s integration
    /// phase (0-based weighted-layer index).
    pub fn integration_window(&self, layer: u32) -> (u32, u32) {
        (layer * self.window, (layer + 1) * self.window)
    }

    /// Global timestep range `[start, end)` of layer `l`'s fire phase.
    pub fn fire_window(&self, layer: u32) -> (u32, u32) {
        ((layer + 1) * self.window, (layer + 2) * self.window)
    }

    /// End-to-end latency in timesteps: `T × (L + 1)` (Table 2).
    pub fn latency(&self) -> u32 {
        self.window * (self.weighted_layers + 1)
    }

    /// Converts a layer-local spike time to a global pipeline timestep.
    pub fn globalize(&self, layer: u32, local_t: u32) -> u32 {
        self.fire_window(layer).0 + local_t
    }

    /// Layers whose integration phase is active at global timestep `t`
    /// (exactly one for a single image; the pipeline staircase of Fig. 1).
    pub fn active_layer_at(&self, t: u32) -> Option<u32> {
        let l = t / self.window;
        if l <= self.weighted_layers {
            Some(l)
        } else {
            None
        }
    }

    /// Renders the Fig. 1 staircase: for each layer, which global windows
    /// are integration (`I`) and fire (`F`).
    pub fn staircase(&self) -> Vec<String> {
        let total_windows = self.weighted_layers + 2;
        (0..self.weighted_layers)
            .map(|l| {
                let mut row = String::new();
                for w in 0..total_windows {
                    row.push(if w == l {
                        'I'
                    } else if w == l + 1 {
                        'F'
                    } else {
                        '.'
                    });
                }
                row
            })
            .collect()
    }

    /// Maps a layer-local spike train onto global timesteps.
    pub fn globalize_train(&self, layer: u32, train: &SpikeTrain) -> Vec<(usize, u32)> {
        train
            .spikes()
            .iter()
            .map(|s| (s.neuron, self.globalize(layer, s.t)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Spike;

    #[test]
    fn table2_latencies() {
        assert_eq!(PipelineSchedule::new(16, 24).latency(), 408);
        assert_eq!(PipelineSchedule::new(16, 48).latency(), 816);
        assert_eq!(PipelineSchedule::new(16, 80).latency(), 1360);
    }

    #[test]
    fn windows_abut() {
        let s = PipelineSchedule::new(4, 10);
        for l in 0..4 {
            let (is, ie) = s.integration_window(l);
            let (fs, fe) = s.fire_window(l);
            assert_eq!(ie, fs, "fire starts when integration ends");
            assert_eq!(fe - fs, 10);
            assert_eq!(ie - is, 10);
        }
        // Layer l+1 integrates exactly while layer l fires.
        assert_eq!(s.fire_window(0), s.integration_window(1));
    }

    #[test]
    fn staircase_shape() {
        let s = PipelineSchedule::new(3, 5);
        let rows = s.staircase();
        assert_eq!(rows, vec!["IF...", ".IF..", "..IF."]);
    }

    #[test]
    fn globalize_spikes() {
        let s = PipelineSchedule::new(3, 10);
        let mut train = SpikeTrain::new(vec![4], 10);
        train.push(Spike::new(2, 3));
        let global = s.globalize_train(1, &train);
        assert_eq!(global, vec![(2, 23)]); // fire window of layer 1 starts at 20
    }

    #[test]
    fn active_layer_walks_pipeline() {
        let s = PipelineSchedule::new(2, 10);
        assert_eq!(s.active_layer_at(0), Some(0));
        assert_eq!(s.active_layer_at(15), Some(1));
        assert_eq!(s.active_layer_at(25), Some(2));
        assert_eq!(s.active_layer_at(35), None);
    }
}
