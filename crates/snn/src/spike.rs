use serde::{Deserialize, Serialize};

/// A spike raster over layer boundaries: for each boundary, the
/// `(neuron, global_timestep)` events (input coding first, then one entry
/// per hidden weighted layer).
pub type SpikeRaster = Vec<Vec<(usize, u32)>>;

/// A single spike event in a layer-local time window.
///
/// TTFS coding emits at most one spike per neuron; `scale` carries the
/// linear weight a preceding average-pooling stage attached to the event
/// (1.0 for ordinary spikes), so pooling stays exact in the event domain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spike {
    /// Flat index of the emitting neuron within its layer.
    pub neuron: usize,
    /// Layer-local timestep in `[0, T]` (0 = fired immediately).
    pub t: u32,
    /// Linear scale attached by pooling (1.0 by default).
    pub scale: f32,
}

impl Spike {
    /// Creates an ordinary (scale-1) spike.
    pub fn new(neuron: usize, t: u32) -> Self {
        Self {
            neuron,
            t,
            scale: 1.0,
        }
    }
}

/// An ordered set of spikes for one layer boundary, plus the geometry of
/// the emitting neuron grid.
///
/// # Example
///
/// ```
/// use snn_sim::{Spike, SpikeTrain};
///
/// let mut train = SpikeTrain::new(vec![2, 2], 24);
/// train.push(Spike::new(3, 7));
/// train.push(Spike::new(0, 2));
/// train.sort_by_time();
/// assert_eq!(train.spikes()[0].t, 2);
/// assert!((train.sparsity() - 0.5).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpikeTrain {
    dims: Vec<usize>,
    window: u32,
    spikes: Vec<Spike>,
}

impl SpikeTrain {
    /// Creates an empty train for a neuron grid of the given dims.
    pub fn new(dims: Vec<usize>, window: u32) -> Self {
        Self {
            dims,
            window,
            spikes: Vec::new(),
        }
    }

    /// Dimensions of the emitting neuron grid (e.g. `[C, H, W]`).
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of neurons in the grid.
    pub fn neuron_count(&self) -> usize {
        self.dims.iter().product()
    }

    /// The fire window T of the emitting layer.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// The spike events.
    pub fn spikes(&self) -> &[Spike] {
        &self.spikes
    }

    /// Appends a spike.
    ///
    /// # Panics
    ///
    /// Panics if the neuron index is out of range or the time exceeds the
    /// window — both indicate simulator bugs, not user errors.
    pub fn push(&mut self, spike: Spike) {
        assert!(
            spike.neuron < self.neuron_count(),
            "spike neuron {} out of range {}",
            spike.neuron,
            self.neuron_count()
        );
        assert!(
            spike.t <= self.window,
            "spike time {} beyond window {}",
            spike.t,
            self.window
        );
        self.spikes.push(spike);
    }

    /// Sorts spikes by time then neuron — the order the minfind unit of the
    /// processor feeds them to the PE array.
    pub fn sort_by_time(&mut self) {
        self.spikes
            .sort_by(|a, b| a.t.cmp(&b.t).then(a.neuron.cmp(&b.neuron)));
    }

    /// Number of spikes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.spikes.len()
    }

    /// Fraction of neurons that fired (≤ 1 under TTFS discipline).
    pub fn sparsity(&self) -> f32 {
        self.spikes.len() as f32 / self.neuron_count().max(1) as f32
    }

    /// Checks the TTFS discipline: at most one spike per neuron.
    pub fn is_ttfs(&self) -> bool {
        let mut seen = vec![false; self.neuron_count()];
        for s in &self.spikes {
            if seen[s.neuron] {
                return false;
            }
            seen[s.neuron] = true;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_orders_by_time_then_neuron() {
        let mut t = SpikeTrain::new(vec![4], 10);
        t.push(Spike::new(3, 5));
        t.push(Spike::new(1, 5));
        t.push(Spike::new(2, 1));
        t.sort_by_time();
        let order: Vec<usize> = t.spikes().iter().map(|s| s.neuron).collect();
        assert_eq!(order, vec![2, 1, 3]);
    }

    #[test]
    fn ttfs_discipline_detects_duplicates() {
        let mut t = SpikeTrain::new(vec![2], 10);
        t.push(Spike::new(0, 1));
        assert!(t.is_ttfs());
        t.push(Spike::new(0, 2));
        assert!(!t.is_ttfs());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_neuron() {
        let mut t = SpikeTrain::new(vec![2], 10);
        t.push(Spike::new(5, 1));
    }

    #[test]
    #[should_panic(expected = "beyond window")]
    fn rejects_late_spike() {
        let mut t = SpikeTrain::new(vec![2], 10);
        t.push(Spike::new(0, 11));
    }
}
