//! The TTFS phase primitives shared by every inference backend.
//!
//! An inference backend walks a converted [`ttfs_core::SnnModel`] layer by
//! layer; what differs between backends is *how the integration phase is
//! executed* (dense per-spike broadcast in [`crate::EventSnn`], CSR
//! edge-list traversal in `snn-runtime`). Everything else — input spike
//! coding, the fire/encode phase, exact event-domain pooling and the
//! [`crate::RunStats`] bookkeeping — is identical physics and lives here so
//! the backends cannot drift apart.

use snn_tensor::Tensor;
use ttfs_core::{Base2Kernel, ConvertError, SnnModel, TtfsKernel};

use crate::{LayerStats, RunStats, Spike, SpikeTrain};

/// Encodes a flat input sample into its TTFS spike train (the input-coding
/// window of the pipeline).
pub fn encode_input(
    kernel: &Base2Kernel,
    window: u32,
    sample: &[f32],
    dims: &[usize],
) -> SpikeTrain {
    let mut train = SpikeTrain::new(dims.to_vec(), window);
    for (i, &v) in sample.iter().enumerate() {
        if let Some(t) = kernel.encode(v, window) {
            train.push(Spike::new(i, t));
        }
    }
    train.sort_by_time();
    train
}

/// Fire (encoding) phase: membranes race the falling threshold; each neuron
/// emits at most one spike at its first crossing. Also models the encoder's
/// iteration count (it steps the threshold until every membrane has
/// fired/reset or the window ends).
pub fn fire_phase(
    kernel: &Base2Kernel,
    window: u32,
    vmem: &[f32],
    dims: Vec<usize>,
    stats: &mut LayerStats,
) -> SpikeTrain {
    let mut train = SpikeTrain::new(dims, window);
    let mut latest: u32 = 0;
    let mut all_fired = true;
    for (i, &u) in vmem.iter().enumerate() {
        match kernel.encode(u, window) {
            Some(t) => {
                latest = latest.max(t);
                train.push(Spike::new(i, t));
            }
            None => all_fired = false,
        }
    }
    stats.output_spikes += train.len();
    stats.encoder_iterations += encoder_iteration_count(window, latest, all_fired);
    train.sort_by_time();
    train
}

/// Threshold-walk iteration count of the hardware spike encoder for one
/// fire phase: it stops early once every membrane has fired, otherwise it
/// walks the whole window. Shared so every backend charges encoder cycles
/// identically.
pub fn encoder_iteration_count(window: u32, latest_spike_t: u32, all_fired: bool) -> usize {
    if all_fired {
        latest_spike_t as usize + 1
    } else {
        window as usize + 1
    }
}

/// Exact max pooling in the event domain: within each window the spike with
/// the largest decoded value wins — under TTFS that is the earliest spike
/// (scale ties broken by value).
///
/// # Errors
///
/// Returns [`ConvertError::Structure`] if the train is not `[C, H, W]`.
pub fn max_pool_spikes(
    kernel: &Base2Kernel,
    train: &SpikeTrain,
    win: usize,
    stride: usize,
) -> Result<SpikeTrain, ConvertError> {
    let d = train.dims();
    if d.len() != 3 {
        return Err(ConvertError::Structure(format!(
            "max pool expects [C, H, W] spikes, got {:?}",
            d
        )));
    }
    let (c, h, w) = (d[0], d[1], d[2]);
    let oh = (h - win) / stride + 1;
    let ow = (w - win) / stride + 1;
    // Per-neuron lookup (TTFS: at most one spike each).
    let mut by_neuron: Vec<Option<Spike>> = vec![None; train.neuron_count()];
    for s in train.spikes() {
        by_neuron[s.neuron] = Some(*s);
    }
    let mut out = SpikeTrain::new(vec![c, oh, ow], train.window());
    for ci in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best: Option<Spike> = None;
                let mut best_val = f32::NEG_INFINITY;
                for ky in 0..win {
                    for kx in 0..win {
                        let iy = oy * stride + ky;
                        let ix = ox * stride + kx;
                        if let Some(sp) = by_neuron[(ci * h + iy) * w + ix] {
                            let val = kernel.decode(sp.t) * sp.scale;
                            if val > best_val {
                                best_val = val;
                                best = Some(sp);
                            }
                        }
                    }
                }
                if let Some(sp) = best {
                    out.push(Spike {
                        neuron: (ci * oh + oy) * ow + ox,
                        t: sp.t,
                        scale: sp.scale,
                    });
                }
            }
        }
    }
    out.sort_by_time();
    Ok(out)
}

/// Average pooling in the event domain: every input spike is re-emitted at
/// its output position with `scale / win²` — integration downstream is
/// linear, so this is exact.
///
/// # Errors
///
/// Returns [`ConvertError::Structure`] if the train is not `[C, H, W]`.
pub fn avg_pool_spikes(
    train: &SpikeTrain,
    win: usize,
    stride: usize,
) -> Result<SpikeTrain, ConvertError> {
    let d = train.dims();
    if d.len() != 3 {
        return Err(ConvertError::Structure(format!(
            "avg pool expects [C, H, W] spikes, got {:?}",
            d
        )));
    }
    let (c, h, w) = (d[0], d[1], d[2]);
    let oh = (h - win) / stride + 1;
    let ow = (w - win) / stride + 1;
    let norm = 1.0 / (win * win) as f32;
    let mut out = SpikeTrain::new(vec![c, oh, ow], train.window());
    for sp in train.spikes() {
        let ci = sp.neuron / (h * w);
        let rem = sp.neuron % (h * w);
        let (iy, ix) = (rem / w, rem % w);
        // A spike can belong to several overlapping windows.
        for oy in 0..oh {
            if oy * stride > iy || iy >= oy * stride + win {
                continue;
            }
            for ox in 0..ow {
                if ox * stride > ix || ix >= ox * stride + win {
                    continue;
                }
                out.push(Spike {
                    neuron: (ci * oh + oy) * ow + ox,
                    t: sp.t,
                    scale: sp.scale * norm,
                });
            }
        }
    }
    out.sort_by_time();
    Ok(out)
}

/// Flatten in the event domain: spikes keep their flat neuron index, only
/// the grid geometry collapses.
pub fn flatten_spikes(train: &SpikeTrain) -> SpikeTrain {
    let flat = train.neuron_count();
    let mut t = SpikeTrain::new(vec![flat], train.window());
    for s in train.spikes() {
        t.push(*s);
    }
    t
}

/// Allocates the zeroed [`RunStats`] for a run of `model` over `batch`
/// samples — one [`LayerStats`] slot per weighted layer, latency from the
/// pipeline schedule. Every backend starts from this.
pub fn new_run_stats(model: &SnnModel, batch: usize) -> RunStats {
    RunStats {
        batch,
        layers: vec![LayerStats::default(); model.weighted_layers()],
        latency_timesteps: model.latency_timesteps(),
    }
}

/// Assembles per-sample logit rows into the `[N, classes]` output tensor.
///
/// # Errors
///
/// Returns [`ConvertError::Structure`] if rows are ragged.
pub fn logits_tensor(rows: Vec<Vec<f32>>) -> Result<Tensor, ConvertError> {
    let n = rows.len();
    let classes = rows.first().map(Vec::len).unwrap_or(0);
    let mut data = Vec::with_capacity(n * classes);
    for row in &rows {
        if row.len() != classes {
            return Err(ConvertError::Structure(format!(
                "ragged logit rows: {} vs {}",
                row.len(),
                classes
            )));
        }
        data.extend_from_slice(row);
    }
    Tensor::from_vec(data, &[n, classes]).map_err(|e| ConvertError::Structure(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_input_skips_nonpositive() {
        let k = Base2Kernel::paper_default();
        let train = encode_input(&k, 24, &[0.0, -1.0, 1.0, 0.5], &[4]);
        assert_eq!(train.len(), 2);
        assert!(train.is_ttfs());
    }

    #[test]
    fn fire_phase_counts_iterations() {
        let k = Base2Kernel::paper_default();
        let mut stats = LayerStats::default();
        let train = fire_phase(&k, 24, &[1.0, 0.5, -0.2], vec![3], &mut stats);
        assert_eq!(train.len(), 2);
        assert_eq!(stats.output_spikes, 2);
        // One membrane never fires -> encoder walks the full window.
        assert_eq!(stats.encoder_iterations, 25);
    }

    #[test]
    fn flatten_preserves_spikes() {
        let mut t = SpikeTrain::new(vec![2, 2, 2], 10);
        t.push(Spike::new(5, 3));
        let f = flatten_spikes(&t);
        assert_eq!(f.dims(), &[8]);
        assert_eq!(f.spikes()[0].neuron, 5);
    }

    #[test]
    fn logits_tensor_rejects_ragged_rows() {
        assert!(logits_tensor(vec![vec![1.0, 2.0], vec![3.0]]).is_err());
        let t = logits_tensor(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(t.dims(), &[2, 2]);
    }
}
