//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`] and [`from_str`] over the vendored
//! serde shim's `Content` data model.
//!
//! Floats are printed with Rust's shortest-round-trip `Display`, so an
//! `f32 -> f64 -> text -> f64 -> f32` round trip is bit-exact — the model
//! persistence tests rely on that.

use serde::{Content, Deserialize, Serialize};

/// Serialization/parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Returns an error if the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
///
/// # Errors
///
/// Returns an error if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_content(&content)?)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_content(
    c: &Content,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if !v.is_finite() {
                return Err(Error("non-finite float is not valid JSON".into()));
            }
            // Keep integral floats distinguishable from integers ("1.0").
            if v.fract() == 0.0 && v.abs() < 1e15 {
                out.push_str(&format!("{v:.1}"));
            } else {
                out.push_str(&v.to_string());
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u codepoint".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error("truncated UTF-8".into()))?;
                    let text =
                        std::str::from_utf8(chunk).map_err(|_| Error("invalid UTF-8".into()))?;
                    s.push_str(text);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(from_str::<u32>("3").unwrap(), 3);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn f32_roundtrip_is_bit_exact() {
        for v in [0.1f32, -1.5e-8, 3.0, f32::MIN_POSITIVE, 123456.78] {
            let json = to_string(&v).unwrap();
            let back: f32 = from_str(&json).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} -> {json} -> {back}");
        }
    }

    #[test]
    fn vec_and_nested_roundtrip() {
        let v = vec![vec![1.0f32, 2.5], vec![-3.25]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1.0,2.5],[-3.25]]");
        assert_eq!(from_str::<Vec<Vec<f32>>>(&json).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(from_str::<u32>("{not json").is_err());
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("3 4").is_err());
        assert!(from_str::<Vec<u32>>("[1,2").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v = vec![(1u32, 2u32)];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        assert_eq!(from_str::<Vec<(u32, u32)>>(&json).unwrap(), v);
    }

    #[test]
    fn unicode_strings() {
        let s = "héllo ∀x — ok".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
    }
}
