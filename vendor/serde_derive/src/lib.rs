//! Hand-rolled derive macros for the vendored serde shim.
//!
//! Parses the item's token stream directly (no `syn`/`quote` available
//! offline) and emits `impl serde::Serialize` / `impl serde::Deserialize`
//! lowering to the shim's `Content` tree. Supported shapes — everything this
//! workspace derives on:
//!
//! * structs with named fields, tuple structs, unit structs
//! * enums with unit, struct and tuple variants (externally tagged, like
//!   upstream serde)
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported;
//! hitting one panics at compile time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skips `#[...]` / `#![...]` attribute tokens starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1;
                if let Some(TokenTree::Punct(p2)) = tokens.get(i) {
                    if p2.as_char() == '!' {
                        i += 1;
                    }
                }
                // The bracketed attribute body.
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Counts top-level comma-separated segments of a token list, ignoring
/// commas nested inside `<...>`.
fn count_top_level_segments(tokens: &[TokenTree]) -> usize {
    let mut segments = 0usize;
    let mut in_segment = false;
    let mut angle_depth = 0i32;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                in_segment = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                in_segment = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if in_segment {
                    segments += 1;
                }
                in_segment = false;
            }
            _ => in_segment = true,
        }
    }
    if in_segment {
        segments += 1;
    }
    segments
}

/// Parses named fields out of a brace group body.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        i = skip_vis(tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, found {other}"),
        };
        fields.push(name);
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected `:` after field, found {other:?}"),
        }
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_fields_after_name(tokens: &[TokenTree], i: usize) -> Fields {
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Fields::Named(parse_named_fields(&body))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Fields::Tuple(count_top_level_segments(&body))
        }
        _ => Fields::Unit,
    }
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, found {other}"),
        };
        i += 1;
        let fields = parse_fields_after_name(tokens, i);
        if !matches!(fields, Fields::Unit) {
            i += 1;
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                panic!("serde_derive shim: explicit discriminants are unsupported");
            }
        }
        // Trailing comma between variants.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    // Skip attributes/visibility before the item keyword.
    loop {
        i = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, i);
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    break;
                }
                i += 1; // e.g. stray modifiers
            }
            Some(_) => i += 1,
            None => panic!("serde_derive shim: no struct/enum found"),
        }
    }
    let kw = tokens[i].to_string();
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic types are unsupported (type `{name}`)");
        }
    }
    if kw == "struct" {
        Item::Struct {
            name,
            fields: parse_fields_after_name(&tokens, i),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Item::Enum {
                    name,
                    variants: parse_variants(&body),
                }
            }
            other => panic!("serde_derive shim: expected enum body, found {other:?}"),
        }
    }
}

fn serialize_fields_expr(prefix: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_content(&{prefix}{f}))")
                })
                .collect();
            format!("::serde::Content::Map(vec![{}])", entries.join(", "))
        }
        Fields::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_content(&{prefix}{k})"))
                .collect();
            if *n == 1 {
                entries.into_iter().next().unwrap()
            } else {
                format!("::serde::Content::Seq(vec![{}])", entries.join(", "))
            }
        }
        Fields::Unit => "::serde::Content::Null".to_string(),
    }
}

fn gen_struct_serialize(name: &str, fields: &Fields) -> String {
    let body = serialize_fields_expr("self.", fields);
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn deserialize_named_fields(ty: &str, names: &[String], map_expr: &str) -> String {
    let inits: Vec<String> = names
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_content(::serde::field({map_expr}, \"{f}\")?)?"
            )
        })
        .collect();
    format!("{ty} {{ {} }}", inits.join(", "))
}

fn gen_struct_deserialize(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let init = deserialize_named_fields(name, names, "m");
            format!(
                "let m = content.as_map().ok_or_else(|| ::serde::Error::msg(\
                     \"expected map for struct {name}\"))?;\n\
                 Ok({init})"
            )
        }
        Fields::Tuple(n) if *n == 1 => {
            format!("Ok({name}(::serde::Deserialize::from_content(content)?))")
        }
        Fields::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| {
                    format!(
                        "::serde::Deserialize::from_content(s.get({k}).ok_or_else(|| \
                         ::serde::Error::msg(\"tuple struct too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "let s = content.as_seq().ok_or_else(|| ::serde::Error::msg(\
                     \"expected seq for struct {name}\"))?;\n\
                 Ok({name}({}))",
                inits.join(", ")
            )
        }
        Fields::Unit => format!("let _ = content; Ok({name})"),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(content: &::serde::Content) -> Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = Vec::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => arms.push(format!(
                "{name}::{vn} => ::serde::Content::Str(\"{vn}\".to_string()),"
            )),
            Fields::Named(names) => {
                let pat: Vec<String> = names.iter().map(|f| f.to_string()).collect();
                let entries: Vec<String> = names
                    .iter()
                    .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_content({f}))"))
                    .collect();
                arms.push(format!(
                    "{name}::{vn} {{ {} }} => ::serde::Content::Map(vec![(\
                         \"{vn}\".to_string(), ::serde::Content::Map(vec![{}]))]),",
                    pat.join(", "),
                    entries.join(", ")
                ));
            }
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                let inner = if *n == 1 {
                    "::serde::Serialize::to_content(f0)".to_string()
                } else {
                    let entries: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_content({b})"))
                        .collect();
                    format!("::serde::Content::Seq(vec![{}])", entries.join(", "))
                };
                arms.push(format!(
                    "{name}::{vn}({}) => ::serde::Content::Map(vec![(\
                         \"{vn}\".to_string(), {inner})]),",
                    binds.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n\
                 match self {{\n{}\n}}\n\
             }}\n\
         }}",
        arms.join("\n")
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    // Unit variants arrive as plain strings.
    let mut str_arms = Vec::new();
    for v in variants {
        if matches!(v.fields, Fields::Unit) {
            let vn = &v.name;
            str_arms.push(format!("\"{vn}\" => return Ok({name}::{vn}),"));
        }
    }
    // Data variants arrive as single-entry maps {"Variant": payload}.
    let mut map_arms = Vec::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => map_arms.push(format!(
                "\"{vn}\" => {{ let _ = payload; return Ok({name}::{vn}); }}"
            )),
            Fields::Named(names) => {
                let init = deserialize_named_fields(&format!("{name}::{vn}"), names, "inner");
                map_arms.push(format!(
                    "\"{vn}\" => {{\n\
                         let inner = payload.as_map().ok_or_else(|| ::serde::Error::msg(\
                             \"expected map payload for variant {vn}\"))?;\n\
                         return Ok({init});\n\
                     }}"
                ));
            }
            Fields::Tuple(n) if *n == 1 => map_arms.push(format!(
                "\"{vn}\" => return Ok({name}::{vn}(::serde::Deserialize::from_content(payload)?)),"
            )),
            Fields::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|k| {
                        format!(
                            "::serde::Deserialize::from_content(s.get({k}).ok_or_else(|| \
                             ::serde::Error::msg(\"variant payload too short\"))?)?"
                        )
                    })
                    .collect();
                map_arms.push(format!(
                    "\"{vn}\" => {{\n\
                         let s = payload.as_seq().ok_or_else(|| ::serde::Error::msg(\
                             \"expected seq payload for variant {vn}\"))?;\n\
                         return Ok({name}::{vn}({}));\n\
                     }}",
                    inits.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(content: &::serde::Content) -> Result<Self, ::serde::Error> {{\n\
                 if let Some(s) = content.as_str() {{\n\
                     match s {{\n{str_arms}\n_ => {{}}\n}}\n\
                 }}\n\
                 if let Some(m) = content.as_map() {{\n\
                     if let Some((tag, payload)) = m.first().map(|(k, v)| (k.as_str(), v)) {{\n\
                         match tag {{\n{map_arms}\n_ => {{}}\n}}\n\
                     }}\n\
                 }}\n\
                 Err(::serde::Error::msg(\"no matching variant of {name}\"))\n\
             }}\n\
         }}",
        str_arms = str_arms.join("\n"),
        map_arms = map_arms.join("\n")
    )
}

/// Derives `serde::Serialize` (shim data model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => gen_struct_serialize(&name, &fields),
        Item::Enum { name, variants } => gen_enum_serialize(&name, &variants),
    };
    code.parse()
        .expect("serde_derive shim: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (shim data model).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => gen_struct_deserialize(&name, &fields),
        Item::Enum { name, variants } => gen_enum_deserialize(&name, &variants),
    };
    code.parse()
        .expect("serde_derive shim: generated invalid Deserialize impl")
}
