//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Benchmarks run with `harness = false`; `criterion_group!` /
//! `criterion_main!` build a plain `main` that times each registered
//! function with `std::time::Instant` and prints mean/min wall-clock time
//! per iteration. No statistics engine, no HTML reports — enough to compare
//! relative cost of the paper's kernels locally and in CI.

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark configuration and sink (shim).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(600),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Wall-clock budget for warm-up.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.clone();
        run_benchmark(&config, id, f);
        self
    }
}

/// A named group of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Times `f` under `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        let config = self.criterion.clone();
        run_benchmark(&config, &full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// workload.
pub struct Bencher<'a> {
    config: &'a Criterion,
    /// Mean nanoseconds per iteration, filled by `iter`.
    mean_ns: f64,
    min_ns: f64,
    iterations: u64,
}

impl Bencher<'_> {
    /// Times the closure: warm-up, then samples until the measurement
    /// budget or sample count is exhausted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, also calibrating iterations per sample.
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        // iters/ns from warm-up, scaled to one sample's share of the
        // measurement budget.
        let rate = warm_iters as f64 / self.config.warm_up_time.as_nanos().max(1) as f64;
        let sample_budget_ns =
            self.config.measurement_time.as_nanos() as f64 / self.config.sample_size.max(1) as f64;
        let per_sample = ((rate * sample_budget_ns) as u64).max(1);

        let deadline = Instant::now() + self.config.measurement_time;
        let mut total_ns: f64 = 0.0;
        let mut total_iters: u64 = 0;
        let mut min_ns = f64::INFINITY;
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64;
            total_ns += ns;
            total_iters += per_sample;
            min_ns = min_ns.min(ns / per_sample as f64);
            if Instant::now() >= deadline {
                break;
            }
        }
        self.mean_ns = total_ns / total_iters.max(1) as f64;
        self.min_ns = min_ns;
        self.iterations = total_iters;
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(config: &Criterion, id: &str, mut f: F) {
    let mut bencher = Bencher {
        config,
        mean_ns: 0.0,
        min_ns: 0.0,
        iterations: 0,
    };
    f(&mut bencher);
    eprintln!(
        "bench {id:<40} mean {:>12}  min {:>12}  ({} iters)",
        format_ns(bencher.mean_ns),
        format_ns(bencher.min_ns),
        bencher.iterations
    );
}

/// Registers a group of benchmark target functions (both upstream forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Builds `main` from registered groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut group = c.benchmark_group("shim");
        let mut ran = false;
        group.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
