//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Provides the [`Strategy`] trait (ranges, tuples, `collection::vec`,
//! `prop_map`, `prop_flat_map`), the `proptest!` macro with
//! `#![proptest_config(...)]`, and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` assertion macros. Failing cases report the failing seed;
//! there is **no shrinking** — cases are small in this workspace, so the raw
//! counterexample is already readable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub mod collection;

/// The RNG driving test-case generation.
pub type TestRng = StdRng;

/// Builds the deterministic RNG for one generated case.
pub fn new_rng(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// Why a generated test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed — the property is falsified.
    Fail(String),
    /// The case did not meet a `prop_assume!` precondition — retry.
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Creates a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "assumption not met: {m}"),
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` builds out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        let intermediate = self.base.generate(rng);
        (self.f)(intermediate).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, usize, u64, i32);

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($t:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Everything a test file usually imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a proptest case (returns a
/// [`TestCaseError::Fail`] instead of panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "{}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "{} == {} (left: {:?}, right: {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// `assert_ne!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "{} != {} (both: {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Rejects a case that does not meet a precondition (it is retried with
/// fresh inputs, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Defines property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_prop(x in 0u32..10, v in proptest::collection::vec(0.0f32..1.0, 4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases: u32 = ($cfg).cases;
                // Distinct deterministic seed stream per test name.
                let __name_hash: u64 = stringify!($name)
                    .as_bytes()
                    .iter()
                    .fold(0xcbf29ce484222325u64, |h, &b| {
                        (h ^ b as u64).wrapping_mul(0x100000001b3)
                    });
                let mut __passed: u32 = 0;
                let mut __rejected: u32 = 0;
                let mut __attempt: u64 = 0;
                while __passed < __cases {
                    let __seed = __name_hash.wrapping_add(__attempt);
                    __attempt += 1;
                    let mut __rng = $crate::new_rng(__seed);
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $( let $pat = $crate::Strategy::generate(&$strat, &mut __rng); )*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            __rejected += 1;
                            assert!(
                                __rejected < __cases.saturating_mul(64).max(1024),
                                "proptest `{}`: too many rejected cases ({})",
                                stringify!($name),
                                __rejected
                            );
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest `{}` failed (seed {}): {}",
                                stringify!($name),
                                __seed,
                                __msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn helper_returning_result(x: u32) -> Result<(), TestCaseError> {
        prop_assert!(x < 1000, "x was {x}");
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds; `?` works on helpers.
        #[test]
        fn ranges_and_helpers(x in 0u32..10, f in -1.0f32..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&f));
            helper_returning_result(x)?;
        }

        /// collection::vec honours exact and ranged sizes.
        #[test]
        fn vec_sizes(
            exact in crate::collection::vec(0.0f32..1.0, 7),
            ranged in crate::collection::vec(0u32..5, 1..4),
        ) {
            prop_assert_eq!(exact.len(), 7);
            prop_assert!((1..4).contains(&ranged.len()));
        }

        /// Nested vec of tuples and map/flat_map composition.
        #[test]
        fn composition(
            nested in crate::collection::vec(
                crate::collection::vec((0usize..100, 0u32..25), 0..6),
                1..4,
            ),
            mapped in (1usize..=4, 1usize..=4).prop_flat_map(|(r, c)| {
                crate::collection::vec(0.0f32..1.0, r * c).prop_map(move |v| (r, c, v))
            }),
        ) {
            for row in &nested {
                for &(a, b) in row {
                    prop_assert!(a < 100 && b < 25);
                }
            }
            let (r, c, v) = mapped;
            prop_assert_eq!(v.len(), r * c);
        }

        /// prop_assume rejects without failing.
        #[test]
        fn assume_filters(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed (seed")]
    fn failing_property_panics_with_seed() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn inner(x in 0u32..10) {
                prop_assert!(x < 3, "x = {x}");
            }
        }
        inner();
    }
}
