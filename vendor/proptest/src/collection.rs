//! Collection strategies: `proptest::collection::vec`.

use crate::{Strategy, TestRng};
use rand::Rng;
use std::ops::Range;

/// An exact size or a half-open size range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range for collection::vec");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length is
/// drawn from `size` (an exact `usize` or a `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
