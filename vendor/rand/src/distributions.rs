//! Distributions: [`Standard`], [`Uniform`] and the range-sampling glue
//! behind `Rng::gen_range`.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution per type: unit-interval floats, full-range
/// integers, fair booleans.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 mantissa bits -> uniform on [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform distribution over `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    lo: T,
    hi: T,
}

impl<T: Copy> Uniform<T> {
    /// Creates a uniform distribution over `[lo, hi)`.
    pub fn new(lo: T, hi: T) -> Self {
        Self { lo, hi }
    }
}

impl Distribution<f32> for Uniform<f32> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        sample_f32(rng, self.lo, self.hi)
    }
}

impl Distribution<f64> for Uniform<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        sample_f64(rng, self.lo, self.hi)
    }
}

impl Distribution<usize> for Uniform<usize> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        sample_u64(rng, self.lo as u64, self.hi as u64) as usize
    }
}

fn sample_f32<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32) -> f32 {
    let u = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
    lo + u * (hi - lo)
}

fn sample_f64<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    lo + u * (hi - lo)
}

/// Unbiased integer sampling on `[lo, hi)` via rejection of the biased tail.
fn sample_u64<R: RngCore + ?Sized>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    assert!(lo < hi, "gen_range called with empty range");
    let span = hi - lo;
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return lo + v % span;
        }
    }
}

fn sample_i64<R: RngCore + ?Sized>(rng: &mut R, lo: i64, hi: i64) -> i64 {
    assert!(lo < hi, "gen_range called with empty range");
    let span = (hi as i128 - lo as i128) as u64;
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return (lo as i128 + (v % span) as i128) as i64;
        }
    }
}

/// Types `Rng::gen_range` can sample uniformly. Mirrors upstream rand's
/// `SampleUniform` so that `Range<{float literal}>` unifies with the
/// expected output type during inference.
pub trait SampleUniform: Sized {
    /// Uniform sample on `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample on `[lo, hi]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        sample_f32(rng, lo, hi)
    }
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        sample_f32(rng, lo, hi) // closed/open indistinguishable for floats here
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        sample_f64(rng, lo, hi)
    }
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        sample_f64(rng, lo, hi)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                sample_i64(rng, lo as i64, hi as i64) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                sample_i64(rng, lo as i64, hi as i64 + 1) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, u8, u16, u32);

impl SampleUniform for usize {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        sample_u64(rng, lo as u64, hi as u64) as usize
    }
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        sample_u64(rng, lo as u64, hi as u64 + 1) as usize
    }
}

impl SampleUniform for u64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        sample_u64(rng, lo, hi)
    }
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        sample_u64(rng, lo, hi + 1)
    }
}

impl SampleUniform for i64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        sample_i64(rng, lo, hi)
    }
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        sample_i64(rng, lo, hi + 1)
    }
}

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let f = r.gen_range(-0.3..0.3f32);
            assert!((-0.3..0.3).contains(&f));
            let u = r.gen_range(0usize..7);
            assert!(u < 7);
            let i = r.gen_range(0u32..25);
            assert!(i < 25);
            let k = r.gen_range(1usize..=6);
            assert!((1..=6).contains(&k));
        }
    }

    #[test]
    fn uniform_distribution_covers_range() {
        let mut r = StdRng::seed_from_u64(2);
        let d = Uniform::new(-1.0f32, 1.0);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            let v = d.sample(&mut r);
            assert!((-1.0..1.0).contains(&v));
            lo_seen |= v < -0.5;
            hi_seen |= v > 0.5;
        }
        assert!(lo_seen && hi_seen);
    }
}
