//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small, deterministic implementation of the APIs the seed code
//! calls: [`rngs::StdRng`] (xoshiro256++ seeded via splitmix64),
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] / [`Rng::gen_range`],
//! [`distributions::Uniform`] and [`seq::SliceRandom::shuffle`].
//!
//! Stream values differ from upstream `rand` (a different PRNG), but every
//! consumer in this workspace only relies on determinism per seed, never on
//! specific values.

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::{Distribution, SampleRange, Standard};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution (`f32`/`f64` in
    /// `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Fair coin with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.gen::<f64>()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds. Only `seed_from_u64` is used in this workspace.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}
