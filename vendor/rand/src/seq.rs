//! Sequence helpers: in-place Fisher–Yates [`SliceRandom::shuffle`].

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle moved something");
    }
}
