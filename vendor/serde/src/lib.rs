//! Offline shim for the subset of `serde` this workspace uses.
//!
//! Instead of upstream serde's visitor architecture, this shim models a
//! serialized value as an explicit [`Content`] tree; `Serialize` lowers a
//! value into the tree and `Deserialize` rebuilds it from one. The
//! `serde_json` shim renders/parses that tree as JSON with serde's standard
//! data model (maps for structs, externally tagged enums), so on-disk
//! artifacts look exactly like upstream serde_json output.
//!
//! The derive macros are re-exported from the vendored `serde_derive`
//! proc-macro crate, so `#[derive(Serialize, Deserialize)]` works unchanged.

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value: the shim's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Key-ordered map (struct fields / enum tagging).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value widened to `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::I64(v) => Some(v as f64),
            Content::U64(v) => Some(v as f64),
            Content::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric value as `u64` if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(v) => Some(v),
            Content::I64(v) if v >= 0 => Some(v as u64),
            Content::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// Numeric value as `i64` if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::I64(v) => Some(v),
            Content::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Content::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    /// Boolean value, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Content::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Looks up a required struct field in a content map.
pub fn field<'a>(map: &'a [(String, Content)], key: &str) -> Result<&'a Content, Error> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::msg(format!("missing field `{key}`")))
}

/// Types that can lower themselves into a [`Content`] tree.
pub trait Serialize {
    /// Lowers `self` into the serialization data model.
    fn to_content(&self) -> Content;
}

/// Types that can rebuild themselves from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value, or explains why the content does not fit.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let v = content
                    .as_u64()
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(v).map_err(|_| Error::msg(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let v = content
                    .as_i64()
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(v).map_err(|_| Error::msg(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

serialize_unsigned!(u8, u16, u32, u64, usize);
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| Error::msg("expected f32"))
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content.as_f64().ok_or_else(|| Error::msg("expected f64"))
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

// `Content` is its own data model — the identity impls make it usable as a
// dynamically-typed value (the shim's analogue of `serde_json::Value`).
impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_seq()
            .ok_or_else(|| Error::msg("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let seq = content.as_seq().ok_or_else(|| Error::msg("expected tuple"))?;
                Ok(($($t::from_content(
                    seq.get($n).ok_or_else(|| Error::msg("tuple too short"))?,
                )?,)+))
            }
        }
    )+};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u32::from_content(&42u32.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-3i64).to_content()).unwrap(), -3);
        assert_eq!(f32::from_content(&1.5f32.to_content()).unwrap(), 1.5);
        assert!(bool::from_content(&true.to_content()).unwrap());
        let v = vec![(1usize, 2u32), (3, 4)];
        assert_eq!(
            Vec::<(usize, u32)>::from_content(&v.to_content()).unwrap(),
            v
        );
    }

    #[test]
    fn option_null_roundtrip() {
        let none: Option<f32> = None;
        assert_eq!(none.to_content(), Content::Null);
        assert_eq!(Option::<f32>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(
            Option::<f32>::from_content(&Content::F64(2.0)).unwrap(),
            Some(2.0)
        );
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(u32::from_content(&Content::Str("x".into())).is_err());
        assert!(Vec::<f32>::from_content(&Content::Bool(true)).is_err());
    }
}
