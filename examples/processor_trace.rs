//! Per-layer cycle/energy trace of VGG-16 on the SNN processor, plus the
//! functional hardware units in action: the minfind sorter and the spike
//! encoder with its threshold LUT and priority encoder.
//!
//! Run: `cargo run --release --example processor_trace`

use ttfs_snn::hw::{
    vgg16_geometry, MinFindUnit, Processor, ProcessorConfig, SpikeEncoder, ThresholdLut,
    WorkloadProfile,
};

fn main() {
    // --- functional units -------------------------------------------------
    // The spike encoder: membranes race the falling threshold; simultaneous
    // crossings serialize through the priority encoder.
    let encoder = SpikeEncoder::new(ThresholdLut::base2(4.0, 1.0, 24));
    let vmem = [0.95f32, 0.95, 0.40, 0.12, -0.3, 0.02];
    let enc = encoder.encode(&vmem);
    println!("spike encoder on {vmem:?}:");
    for (neuron, t) in &enc.spikes {
        println!("  neuron {neuron} fires at t={t}");
    }
    println!("  ({} cycles; negative membranes never fire)\n", enc.cycles);

    // The minfind unit: merge-sorts per-source spike streams for the PEs.
    let minfind = MinFindUnit::new(16);
    let streams = vec![
        vec![(0usize, 2u32), (1, 9)],
        vec![(2, 0), (3, 5)],
        vec![(4, 5)],
    ];
    let (sorted, cycles) = minfind.merge(&streams);
    println!("minfind merge of 3 streams ({cycles} cycles): {sorted:?}\n");

    // --- full-network trace ------------------------------------------------
    let processor = Processor::new(ProcessorConfig::proposed());
    let layers = vgg16_geometry(32, 32, 10);
    let report = processor.run_network(&layers, &WorkloadProfile::paper_default());

    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "layer", "in_spikes", "SOPs", "cycles", "PE uJ", "SRAM uJ", "DRAM uJ", "misc uJ"
    );
    for l in &report.layers {
        println!(
            "{:<10} {:>12} {:>12} {:>10} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            l.name,
            l.input_spikes,
            l.sops,
            l.cycles,
            l.pe_energy_uj,
            l.sram_energy_uj,
            l.dram_energy_uj,
            l.overhead_energy_uj
        );
    }
    println!(
        "\ntotal: {} cycles | {:.1} uJ/image ({:.1} uJ static) | {:.0} fps | utilization {:.0} %",
        report.cycles,
        report.energy_per_image_uj,
        report.static_energy_uj,
        report.fps,
        report.utilization * 100.0
    );
}
