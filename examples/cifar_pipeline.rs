//! End-to-end pipeline on the CIFAR-10 stand-in: CAT training → conversion
//! → 5-bit logarithmic weight quantization → event-driven SNN evaluation →
//! processor energy/throughput estimate for the *full-size* VGG-16 the
//! paper deploys, using the sparsity measured on the scaled model.
//!
//! Run: `cargo run --release --example cifar_pipeline`

use rand::rngs::StdRng;
use rand::SeedableRng;
use ttfs_snn::data::{DatasetSpec, SyntheticDataset};
use ttfs_snn::hw::{vgg16_geometry, Processor, ProcessorConfig, WorkloadProfile};
use ttfs_snn::logquant::{LogBase, LogQuantizer};
use ttfs_snn::nn::{
    ActivationLayer, BatchNorm2d, Conv2dLayer, DenseLayer, Flatten, Layer, MaxPool2dLayer, Relu,
    Sequential,
};
use ttfs_snn::sim::EventSnn;
use ttfs_snn::tensor::Conv2dSpec;
use ttfs_snn::ttfs::{
    convert, normalize_output_layer, train_with_cat, Base2Kernel, CatComponents, CatSchedule,
    PhiTtfs, SnnLayer,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(11);
    let spec = DatasetSpec::cifar10_like()
        .with_samples(200, 100)
        .with_geometry(3, 8, 8);
    let data = SyntheticDataset::generate(&spec, 5);

    let mut net = Sequential::new(vec![
        Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(3, 8, 3, 1, 1), &mut rng)),
        Layer::BatchNorm2d(BatchNorm2d::new(8)),
        Layer::Activation(ActivationLayer::new(Box::new(Relu))),
        Layer::MaxPool2d(MaxPool2dLayer::new(2, 2)),
        Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(8, 16, 3, 1, 1), &mut rng)),
        Layer::BatchNorm2d(BatchNorm2d::new(16)),
        Layer::Activation(ActivationLayer::new(Box::new(Relu))),
        Layer::MaxPool2d(MaxPool2dLayer::new(2, 2)),
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(16 * 2 * 2, 10, &mut rng)),
    ]);

    // CAT training with the paper's hardware kernel (T=24, tau=4).
    let phi = PhiTtfs::new(Base2Kernel::paper_default(), 24);
    let schedule = CatSchedule::paper_scaled(20, phi, CatComponents::full());
    let log = train_with_cat(
        &mut net,
        &schedule,
        data.train_images(),
        data.train_labels(),
        data.test_images(),
        data.test_labels(),
        32,
        &mut rng,
    )?;

    let mut model = convert(&net, Base2Kernel::paper_default(), 24)?;
    normalize_output_layer(&mut model, data.train_images())?;
    let fp_acc = model.accuracy(data.test_images(), data.test_labels())?;

    // 5-bit logarithmic quantization, a_w = 2^(-1/2) (the paper's pick).
    for layer in model.layers_mut() {
        if let SnnLayer::Conv { weight, .. } | SnnLayer::Dense { weight, .. } = layer {
            let q = LogQuantizer::fit(LogBase::inv_sqrt2(), 5, weight.as_slice())?;
            *weight = q.quantize_tensor(weight);
        }
    }
    let q_acc = model.accuracy(data.test_images(), data.test_labels())?;
    println!(
        "ANN {:.1} % -> SNN fp32 {:.1} % -> SNN 5-bit log {:.1} %",
        log.final_test_accuracy() * 100.0,
        fp_acc * 100.0,
        q_acc * 100.0
    );

    // Measure event sparsity on the quantized model.
    let sim = EventSnn::new(&model);
    let (_, stats) = sim.run(data.test_images())?;
    let input_sparsity = stats.layers[0].input_spikes as f32 / (data.test_images().len() as f32);
    // The final readout layer has no fire phase, so its "sparsity" is 0 —
    // exclude it from the profile.
    let mut layer_sparsity: Vec<f32> = stats.layers.iter().map(|l| l.output_sparsity()).collect();
    layer_sparsity.pop();
    println!(
        "measured sparsity: input {:.2}, layers {:?}",
        input_sparsity,
        layer_sparsity
            .iter()
            .map(|s| (s * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // Project onto the paper's deployment: VGG-16 on the SNN processor.
    let profile = WorkloadProfile::from_measurements(input_sparsity, layer_sparsity);
    let processor = Processor::new(ProcessorConfig::proposed());
    let report = processor.run_network(&vgg16_geometry(32, 32, 10), &profile);
    println!(
        "VGG-16 on the processor with measured sparsity: {:.1} uJ/image, {:.0} fps, {:.0}% PE utilization",
        report.energy_per_image_uj,
        report.fps,
        report.utilization * 100.0
    );
    println!("(paper Table 4: 486.7 uJ, 327 fps)");
    Ok(())
}
