//! Quickstart: train a small ANN with conversion-aware training (CAT),
//! convert it to a TTFS spiking network, and check that the event-driven
//! SNN matches the ANN — the paper's "zero conversion loss".
//!
//! Run: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use ttfs_snn::data::{DatasetSpec, SyntheticDataset};
use ttfs_snn::nn::{
    ActivationLayer, BatchNorm2d, Conv2dLayer, DenseLayer, Flatten, Layer, MaxPool2dLayer, Relu,
    Sequential,
};
use ttfs_snn::sim::EventSnn;
use ttfs_snn::tensor::Conv2dSpec;
use ttfs_snn::ttfs::{
    convert, normalize_output_layer, train_with_cat, Base2Kernel, CatComponents, CatSchedule,
    PhiTtfs,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. A small synthetic 10-class dataset (CIFAR-10 stand-in).
    let spec = DatasetSpec::cifar10_like()
        .with_samples(160, 80)
        .with_geometry(3, 8, 8);
    let data = SyntheticDataset::generate(&spec, 42);

    // 2. A VGG-style CNN: conv-BN-act, pool, then a dense classifier.
    let mut net = Sequential::new(vec![
        Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(3, 8, 3, 1, 1), &mut rng)),
        Layer::BatchNorm2d(BatchNorm2d::new(8)),
        Layer::Activation(ActivationLayer::new(Box::new(Relu))),
        Layer::MaxPool2d(MaxPool2dLayer::new(2, 2)),
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(8 * 4 * 4, 10, &mut rng)),
    ]);

    // 3. CAT: ReLU warm-up -> phi_Clip bulk -> phi_TTFS after the LR decays
    //    (T = 24, tau = 4, theta0 = 1 — the paper's hardware parameters).
    let phi = PhiTtfs::new(Base2Kernel::paper_default(), 24);
    let schedule = CatSchedule::paper_scaled(15, phi, CatComponents::full());
    let log = train_with_cat(
        &mut net,
        &schedule,
        data.train_images(),
        data.train_labels(),
        data.test_images(),
        data.test_labels(),
        32,
        &mut rng,
    )?;
    println!(
        "ANN after CAT: test accuracy {:.1} % (phases: {:?} -> ttfs)",
        log.final_test_accuracy() * 100.0,
        log.epochs.first().map(|e| e.phase)
    );

    // 4. Convert: BN fusion + output-layer weight normalization.
    let mut model = convert(&net, Base2Kernel::paper_default(), 24)?;
    normalize_output_layer(&mut model, data.train_images())?;
    println!(
        "converted SNN: {} weighted layers, latency {} timesteps",
        model.weighted_layers(),
        model.latency_timesteps()
    );

    // 5. Run the event-driven SNN and compare with the ANN.
    let sim = EventSnn::new(&model);
    let snn_acc = sim.accuracy(data.test_images(), data.test_labels())?;
    let ann_acc = log.final_test_accuracy();
    let (_, stats) = sim.run(data.test_images())?;
    println!(
        "SNN: test accuracy {:.1} % | conversion loss {:+.2} pts",
        snn_acc * 100.0,
        (snn_acc - ann_acc) * 100.0
    );
    println!(
        "events: {} spikes, {} synaptic ops, mean sparsity {:.2}",
        stats.total_spikes(),
        stats.total_synaptic_ops(),
        stats.mean_sparsity()
    );
    Ok(())
}
