//! Demonstrates the multiplication-free arithmetic of §3.2: 5-bit
//! logarithmic weights, the eq. 16/18 co-design constraints, and the
//! LUT+shift product of eq. 17 matching an exact multiply.
//!
//! Run: `cargo run --release --example logquant_demo`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ttfs_snn::logquant::{LinearPe, LogBase, LogPe, LogQuantizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(3);
    let weights: Vec<f32> = (0..64).map(|_| rng.gen_range(-1.0..1.0f32)).collect();

    // Quantize to 5-bit log weights, a_w = 2^(-1/2) (the paper's pick).
    let q = LogQuantizer::fit(LogBase::inv_sqrt2(), 5, &weights)?;
    println!(
        "5-bit log quantizer: {} magnitude levels, FSR 2^{:.1}, mean rel. error {:.2} %",
        q.levels(),
        q.fsr_log2(),
        q.mean_relative_error(&weights) * 100.0
    );

    // The co-design constraint: tau must satisfy log2(tau) = 2^z (eq. 18),
    // so the product exponent lands on a tiny fractional grid.
    for tau in [3.0f32, 4.0, 8.0] {
        match LogPe::for_kernel(tau, LogBase::inv_sqrt2()) {
            Ok(pe) => println!(
                "tau = {tau}: OK — LUT needs only {} entries (no multiplier)",
                pe.lut_entries()
            ),
            Err(e) => println!("tau = {tau}: rejected — {e}"),
        }
    }

    // Eq. 17 in action: LUT + shift vs exact multiply for every spike time.
    let pe = LogPe::for_kernel(4.0, LogBase::inv_sqrt2())?.with_fsr_log2(q.fsr_log2());
    let linear = LinearPe::new();
    let mut worst = 0.0f32;
    for &w in weights.iter().take(8) {
        let code = q.code(w);
        let wq = q.decode(code);
        for t in [0u32, 3, 7, 12, 24] {
            let exact = linear.multiply(wq, 4.0, t);
            let approx = pe.multiply(code, t)?;
            worst = worst.max((approx - exact).abs());
        }
    }
    println!("worst |LUT+shift - multiplier| over samples: {worst:.2e}");
    println!("(the log PE replaces every synaptic multiply in the processor — Fig. 6 'I+II')");
    Ok(())
}
