//! The T2FSNN baseline in action: convert a plain-trained ANN, tune its
//! per-layer exponential kernels post hoc (the DAC'20 approach the paper
//! compares against in Table 2), and contrast latency/accuracy with the
//! proposed single-kernel CAT model.
//!
//! Run: `cargo run --release --example t2fsnn_baseline`

use rand::rngs::StdRng;
use rand::SeedableRng;
use ttfs_snn::data::{DatasetSpec, SyntheticDataset};
use ttfs_snn::nn::{
    ActivationLayer, Conv2dLayer, DenseLayer, Flatten, Layer, MaxPool2dLayer, Relu, Sequential,
};
use ttfs_snn::tensor::Conv2dSpec;
use ttfs_snn::ttfs::t2fsnn::T2fsnnModel;
use ttfs_snn::ttfs::{
    convert, train_with_cat, Base2Kernel, CatComponents, CatSchedule, ExpKernel, PhiTtfs,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(21);
    let spec = DatasetSpec::cifar10_like()
        .with_samples(160, 80)
        .with_geometry(3, 8, 8);
    let data = SyntheticDataset::generate(&spec, 13);

    let mut net = Sequential::new(vec![
        Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(3, 8, 3, 1, 1), &mut rng)),
        Layer::Activation(ActivationLayer::new(Box::new(Relu))),
        Layer::MaxPool2d(MaxPool2dLayer::new(2, 2)),
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(8 * 4 * 4, 10, &mut rng)),
    ]);

    // T2FSNN trains a *plain* ANN (clip only — no conversion awareness).
    let phi = PhiTtfs::new(Base2Kernel::paper_default(), 24);
    let schedule = CatSchedule::paper_scaled(15, phi, CatComponents::clip_only());
    train_with_cat(
        &mut net,
        &schedule,
        data.train_images(),
        data.train_labels(),
        data.test_images(),
        data.test_labels(),
        32,
        &mut rng,
    )?;

    let converted = convert(&net, Base2Kernel::paper_default(), 24)?;

    // Wrap with per-layer base-e kernels and tune them post-conversion.
    let mut t2 = T2fsnnModel::new(&converted, ExpKernel::t2fsnn_default(), 80);
    let before = t2.accuracy(data.test_images(), data.test_labels())?;
    let errors = t2.tune_kernels(data.train_images())?;
    let after = t2.accuracy(data.test_images(), data.test_labels())?;

    println!("T2FSNN baseline (base e, T=80, per-layer kernels):");
    for (i, (k, e)) in t2.kernels().iter().zip(&errors).enumerate() {
        println!(
            "  layer {i}: tuned tau={:.2} t_d={:.2}  coding MSE {:.2e}",
            k.tau(),
            k.t_d(),
            e
        );
    }
    println!(
        "  accuracy: {:.1} % before tuning -> {:.1} % after tuning",
        before * 100.0,
        after * 100.0
    );
    println!(
        "  latency: {} timesteps (early firing on)",
        t2.latency_timesteps()
    );
    println!();
    println!(
        "proposed CAT model: identical kernel in every layer, latency {} timesteps,",
        converted.latency_timesteps()
    );
    println!("no tunable kernel parameters, and no per-layer kernel SRAM in hardware (Fig. 6).");
    Ok(())
}
