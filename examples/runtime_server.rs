//! Batched inference runtime: convert a CAT-style network, compile it to
//! the CSR fast path, serve a batch through the multi-threaded inference
//! server, stream the same images through the adaptive deadline batcher,
//! and price the measured event traffic on the paper's processor model.
//!
//! Run: `cargo run --release --example runtime_server`
//!
//! With `--gateway [addr]` it instead serves the model over HTTP via
//! `snn-gateway` (default `127.0.0.1:7878`) and prints ready-to-paste
//! `curl` commands; Ctrl-C stops it. Set `SNN_GATEWAY_ONCE=1` to
//! self-drive one request and exit (used to smoke the path headlessly).
//!
//! With `--model-dir <dir> [addr]` it serves every `.snna` artifact in
//! `dir` through a `ModelRegistry` (lazy load + compile, LRU cache,
//! atomic hot swap): `GET /v1/models`, `POST /v1/models/<name>/infer`,
//! `POST /v1/models/<name>/swap`. Demo artifacts are generated into an
//! empty dir on first run. `SNN_GATEWAY_ONCE=1` self-drives
//! list → infer → swap → infer and exits.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use ttfs_snn::gateway::{client::HttpClient, Gateway, GatewayConfig, InferRequest};
use ttfs_snn::hw::{Processor, ProcessorConfig};
use ttfs_snn::nn::models::vgg16_scaled;
use ttfs_snn::nn::{ActivationLayer, DenseLayer, Flatten, Layer, Relu, Sequential};
use ttfs_snn::runtime::{
    energy, quantize_model, BackendChoice, BackendHint, CsrEngine, InferenceServer, ModelArtifact,
    ModelRegistry, QuantConfig, RegistryConfig, ServerConfig, StreamingConfig, StreamingServer,
};
use ttfs_snn::sim::EventSnn;
use ttfs_snn::tensor::Tensor;
use ttfs_snn::trace::TraceCollector;
use ttfs_snn::ttfs::{convert, Base2Kernel};

/// Serves the converted model over HTTP until killed (or one self-driven
/// request with `SNN_GATEWAY_ONCE=1`).
fn serve_gateway(addr: &str) -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(0);
    let side = 32;
    let input_dims = [3usize, side, side];
    let net = vgg16_scaled(side, 10, 16, &mut rng);
    let model = Arc::new(convert(&net, Base2Kernel::paper_default(), 24)?);
    // One shared weight copy behind the whole serving stack: CSR backend →
    // streaming server (EDF deadline batcher) → HTTP gateway. The trace
    // collector makes every request queryable at GET /v1/trace/<id>.
    let collector = Arc::new(TraceCollector::new(0));
    let server = Arc::new(BackendChoice::Csr.serve_streaming_traced(
        Arc::clone(&model),
        &input_dims,
        StreamingConfig {
            threads: 0,
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            max_pending: 256,
            brownout: None,
        },
        collector,
    )?);
    let mut gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            addr: addr.to_string(),
            ..GatewayConfig::for_dims(&input_dims)
        },
    )?;
    let bound = gateway.local_addr();
    let pixels: usize = input_dims.iter().product();
    println!("snn-gateway serving vgg16/w16 on http://{bound}");
    println!("  # {pixels} pixels in [0,1], optional deadline_ms / priority:");
    println!(
        "  python3 -c 'import json; print(json.dumps({{\"dims\": [3, {side}, {side}], \
         \"pixels\": [0.5]*{pixels}, \"deadline_ms\": 5.0, \"priority\": 2}}))' > /tmp/req.json"
    );
    println!("  curl -s -X POST http://{bound}/v1/infer -d @/tmp/req.json");
    println!("  # the response echoes a trace_id; fetch that request's span tree:");
    println!("  curl -s http://{bound}/v1/trace/<trace_id>");
    println!("  curl -s http://{bound}/metrics | head");
    println!("  curl -s http://{bound}/healthz");

    // Prove the path with one in-process HTTP request, then fetch its
    // trace. The client drops right after, releasing its keep-alive
    // connection's worker.
    {
        let mut client = HttpClient::connect(bound)?;
        let mut request = InferRequest::new(input_dims.to_vec(), vec![0.5; pixels]);
        request.deadline_ms = Some(5.0);
        let response = client.post_json("/v1/infer", &serde_json::to_string(&request)?)?;
        println!(
            "self-check: POST /v1/infer -> {} ({} bytes)",
            response.status,
            response.body.len()
        );
        let body = String::from_utf8_lossy(&response.body).into_owned();
        if let Some(trace_id) = body
            .split("\"trace_id\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .filter(|id| !id.is_empty())
        {
            let tree = client.get(&format!("/v1/trace/{trace_id}"))?;
            let spans = String::from_utf8_lossy(&tree.body)
                .matches("\"span_id\"")
                .count();
            println!(
                "self-check: GET /v1/trace/{trace_id} -> {} ({spans} spans)",
                tree.status,
            );
        }
    }

    if std::env::var("SNN_GATEWAY_ONCE").is_ok() {
        gateway.shutdown();
        server.shutdown();
        return Ok(());
    }
    println!("serving until killed (Ctrl-C)...");
    loop {
        std::thread::park();
    }
}

/// Serves every `.snna` artifact in `dir` over HTTP through a
/// `ModelRegistry`, generating demo artifacts first if the dir is empty.
fn serve_model_dir(dir: &Path, addr: &str) -> Result<(), Box<dyn std::error::Error>> {
    std::fs::create_dir_all(dir)?;
    let has_artifacts = std::fs::read_dir(dir)?
        .flatten()
        .any(|e| e.path().extension().and_then(|x| x.to_str()) == Some("snna"));
    if !has_artifacts {
        println!(
            "no .snna artifacts in {}; generating demo models",
            dir.display()
        );
        let demo = |name: &str,
                    version: &str,
                    seed: u64,
                    dims: &[usize],
                    hint: BackendHint|
         -> Result<(), Box<dyn std::error::Error>> {
            let mut rng = StdRng::seed_from_u64(seed);
            let in_len: usize = dims.iter().product();
            let net = Sequential::new(vec![
                Layer::Flatten(Flatten::new()),
                Layer::Dense(DenseLayer::new(in_len, 32, &mut rng)),
                Layer::Activation(ActivationLayer::new(Box::new(Relu))),
                Layer::Dense(DenseLayer::new(32, 10, &mut rng)),
            ]);
            let model = convert(&net, Base2Kernel::paper_default(), 24)?;
            let artifact = ModelArtifact::build(name, version, model, dims, hint)?;
            let path = dir.join(artifact.info.file_name());
            artifact.save(&path)?;
            println!("  wrote {}", path.display());
            Ok(())
        };
        demo("alpha", "1", 1, &[1, 8, 8], BackendHint::Csr)?;
        demo("alpha", "2", 2, &[1, 8, 8], BackendHint::Csr)?;
        demo("beta", "1", 3, &[1, 6, 6], BackendHint::quant_default())?;
    }

    // The registry lazily loads + compiles artifacts on first request and
    // records registry.load / registry.compile / registry.swap spans.
    let collector = Arc::new(TraceCollector::new(0));
    let registry = Arc::new(ModelRegistry::open_traced(
        dir,
        RegistryConfig {
            byte_budget: 0,
            streaming: StreamingConfig {
                threads: 0,
                max_batch: 8,
                max_delay: Duration::from_millis(2),
                max_pending: 256,
                brownout: None,
            },
            ..RegistryConfig::default()
        },
        Some(collector),
    )?);
    // The plain /v1/infer route serves alpha's active version as of boot;
    // per-model routes always follow the registry (including swaps).
    let alpha = registry.get_or_load("alpha")?;
    let input_dims = alpha.input_dims().to_vec();
    let mut gateway = Gateway::start_with_registry(
        Arc::clone(alpha.server()),
        Arc::clone(&registry),
        GatewayConfig {
            addr: addr.to_string(),
            ..GatewayConfig::for_dims(&input_dims)
        },
    )?;
    let bound = gateway.local_addr();
    let pixels: usize = input_dims.iter().product();
    println!(
        "snn-gateway serving {} model(s) from {} on http://{bound}",
        registry.list().len(),
        dir.display()
    );
    println!("  curl -s http://{bound}/v1/models");
    println!(
        "  python3 -c 'import json; print(json.dumps({{\"dims\": {input_dims:?}, \
         \"pixels\": [0.5]*{pixels}}}))' > /tmp/req.json"
    );
    println!("  curl -s -X POST http://{bound}/v1/models/alpha/infer -d @/tmp/req.json");
    println!("  curl -s -X POST http://{bound}/v1/models/alpha@1/infer -d @/tmp/req.json");
    println!("  curl -s -X POST http://{bound}/v1/models/alpha/swap -d '{{\"version\":\"1\"}}'");
    println!("  curl -s http://{bound}/metrics | head");

    // Self-drive the whole surface once: list, per-model infer, an atomic
    // version swap, and an infer that must land on the swapped version.
    {
        let mut client = HttpClient::connect(bound)?;
        let list = client.get("/v1/models")?;
        println!("self-check: GET /v1/models -> {}", list.status);
        let request = InferRequest::new(input_dims.clone(), vec![0.5; pixels]);
        let body = serde_json::to_string(&request)?;
        let before = client.post_json("/v1/models/alpha/infer", &body)?;
        let swap = client.post_json("/v1/models/alpha/swap", "{\"version\":\"1\"}")?;
        let after = client.post_json("/v1/models/alpha/infer", &body)?;
        println!(
            "self-check: infer -> {}, swap -> {} ({}), infer -> {}",
            before.status,
            swap.status,
            String::from_utf8_lossy(&swap.body),
            after.status
        );
    }

    if std::env::var("SNN_GATEWAY_ONCE").is_ok() {
        gateway.shutdown();
        registry.shutdown();
        return Ok(());
    }
    println!("serving until killed (Ctrl-C)...");
    loop {
        std::thread::park();
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--model-dir") {
        let dir = args
            .get(pos + 1)
            .ok_or("--model-dir requires a directory argument")?;
        let addr = args
            .get(pos + 2)
            .map(String::as_str)
            .unwrap_or("127.0.0.1:7878");
        return serve_model_dir(Path::new(dir), addr);
    }
    if let Some(pos) = args.iter().position(|a| a == "--gateway") {
        let addr = args
            .get(pos + 1)
            .map(String::as_str)
            .unwrap_or("127.0.0.1:7878");
        return serve_gateway(addr);
    }

    let mut rng = StdRng::seed_from_u64(0);
    let side = 32;
    let batch = 16;

    // A VGG-16-shaped network at 1/16 width: real geometry, laptop budget.
    let net = vgg16_scaled(side, 10, 16, &mut rng);
    // One shared, read-only copy of the converted model: the CSR engine,
    // every server worker, and the reference simulator below all hold the
    // same Arc instead of cloning the weights.
    let model = Arc::new(convert(&net, Base2Kernel::paper_default(), 24)?);
    println!(
        "model: {} weighted layers, latency {} timesteps",
        model.weighted_layers(),
        model.latency_timesteps()
    );

    // Compile the CSR fast path for the deployment geometry. Conv layers
    // are pattern-deduplicated (border-class tap runs + one repacked
    // weight copy), so the compiled footprint is a fraction of a flat
    // per-pixel CSR; integration runs edge-major over lane chunks.
    let input_dims = [3, side, side];
    let engine = CsrEngine::compile_shared(Arc::clone(&model), &input_dims)?;
    let footprint = engine.compiled().footprint();
    println!(
        "csr: {} logical edges in {:.2} MB ({} border-class patterns; flat CSR would be {:.2} MB); {} lanes/chunk",
        engine.total_edges(),
        footprint.stored_bytes as f64 / 1e6,
        footprint.patterns,
        footprint.flat_bytes as f64 / 1e6,
        engine.max_lanes(),
    );

    // Serve a batch across the worker pool.
    let server = InferenceServer::new(Arc::new(engine), ServerConfig::default());
    let x = ttfs_snn::tensor::uniform(&[batch, 3, side, side], 0.0, 1.0, &mut rng);
    let report = server.run(&x)?;
    println!(
        "served {} images on {} threads: {:.1} images/sec, p50 {:.0} µs, p99 {:.0} µs",
        report.metrics.images,
        server.threads(),
        report.metrics.images_per_sec,
        report.metrics.latency_p50_us,
        report.metrics.latency_p99_us,
    );

    // The fast path matches the reference event simulator exactly.
    let (reference_logits, _) = EventSnn::new(&model).run(&x)?;
    assert_eq!(report.logits.as_slice(), reference_logits.as_slice());
    println!("logits match the reference event simulator bit-for-bit");

    // Streaming path: the same images arrive one at a time; the adaptive
    // batcher groups them by deadline and each submit gets a ticket. The
    // second engine shares the same Arc'd model — no weight copy.
    let streaming = StreamingServer::new(
        Arc::new(CsrEngine::compile_shared(Arc::clone(&model), &input_dims)?),
        StreamingConfig {
            threads: 0,
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            // Backpressure: shed with SubmitError::QueueFull beyond 4x a
            // full window of admitted-but-unresolved requests.
            max_pending: 32,
            brownout: None,
        },
    );
    let sample_len: usize = input_dims.iter().product();
    let tickets: Vec<_> = (0..batch)
        .map(|i| {
            let image = Tensor::from_vec(
                x.as_slice()[i * sample_len..(i + 1) * sample_len].to_vec(),
                &input_dims,
            )
            .expect("sample slice matches input dims");
            streaming.submit(&image)
        })
        .collect::<Result<_, _>>()?;
    for (i, ticket) in tickets.into_iter().enumerate() {
        let response = ticket.wait()?;
        assert_eq!(
            response.logits.as_slice(),
            &report.logits.as_slice()[i * 10..(i + 1) * 10],
            "streamed logits are bit-identical to the closed batch"
        );
    }
    let stream_metrics = streaming.shutdown();
    println!(
        "streamed {} images in {} batches: e2e p99 {:.0} µs, queue-wait share {:.0}%, mean occupancy {:.1}",
        stream_metrics.requests,
        stream_metrics.batches,
        stream_metrics.e2e_p99_us,
        stream_metrics.queue_wait_share * 100.0,
        stream_metrics.mean_batch_occupancy,
    );

    // Quantized serving: the same Arc'd model behind packed 5-bit log
    // codes + LUT decode — the paper's multiplier-free weight
    // representation as a serving backend. Stored weights shrink 4x, and
    // logits are bit-identical to the event simulator over per-layer
    // quantize_tensor'd weights.
    let qconfig = QuantConfig::default(); // 5-bit, aw = 2^-1/2, exact LUT
    let quant_backend = BackendChoice::Quant(qconfig).build(Arc::clone(&model), &input_dims)?;
    let quant_server = InferenceServer::new(quant_backend, ServerConfig::default());
    let quant_report = quant_server.run(&x)?;
    let (qmodel, _) = quantize_model(&model, qconfig.base, qconfig.bits)?;
    let (quant_reference, _) = EventSnn::new(&qmodel).run(&x)?;
    assert_eq!(
        quant_report.logits.as_slice(),
        quant_reference.as_slice(),
        "quantized serving is bit-identical to the quantized reference"
    );
    let agree = (0..batch)
        .filter(|&i| {
            let row = |t: &Tensor| {
                t.as_slice()[i * 10..(i + 1) * 10]
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| a.total_cmp(b))
                    .map(|(c, _)| c)
            };
            row(&quant_report.logits) == row(&report.logits)
        })
        .count();
    println!(
        "quantized ({}-bit {}): {:.1} images/sec, top-1 agreement {}/{} vs f32",
        qconfig.bits,
        qconfig.base.label(),
        quant_report.metrics.images_per_sec,
        agree,
        batch,
    );

    // Hardware energy report from the measured event counts — f32 path
    // and quantized path, priced on the same proposed (log-PE) processor.
    let processor = Processor::new(ProcessorConfig::proposed());
    let hw = energy::energy_report(&processor, &model, &report.stats, &input_dims)?;
    let quant_hw = energy::energy_report(&processor, &model, &quant_report.stats, &input_dims)?;
    println!(
        "hardware model: f32 {:.1} µJ/image, quantized {:.1} µJ/image, {:.0} fps at {} MHz",
        hw.energy_per_image_uj,
        quant_hw.energy_per_image_uj,
        hw.fps,
        processor.config().frequency_mhz
    );
    Ok(())
}
