//! Batched inference runtime: convert a CAT-style network, compile it to
//! the CSR fast path, serve a batch through the multi-threaded inference
//! server, and price the measured event traffic on the paper's processor
//! model.
//!
//! Run: `cargo run --release --example runtime_server`

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use ttfs_snn::hw::{Processor, ProcessorConfig};
use ttfs_snn::nn::models::vgg16_scaled;
use ttfs_snn::runtime::{energy, CsrEngine, InferenceServer, ServerConfig};
use ttfs_snn::sim::EventSnn;
use ttfs_snn::ttfs::{convert, Base2Kernel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(0);
    let side = 32;
    let batch = 16;

    // A VGG-16-shaped network at 1/16 width: real geometry, laptop budget.
    let net = vgg16_scaled(side, 10, 16, &mut rng);
    let model = convert(&net, Base2Kernel::paper_default(), 24)?;
    println!(
        "model: {} weighted layers, latency {} timesteps",
        model.weighted_layers(),
        model.latency_timesteps()
    );

    // Compile the CSR fast path for the deployment geometry.
    let input_dims = [3, side, side];
    let engine = CsrEngine::compile(&model, &input_dims)?;
    println!("csr: {} synapse edges materialized", engine.total_edges());

    // Serve a batch across the worker pool.
    let server = InferenceServer::new(Arc::new(engine), ServerConfig::default());
    let x = ttfs_snn::tensor::uniform(&[batch, 3, side, side], 0.0, 1.0, &mut rng);
    let report = server.run(&x)?;
    println!(
        "served {} images on {} threads: {:.1} images/sec, p50 {:.0} µs, p99 {:.0} µs",
        report.metrics.images,
        server.threads(),
        report.metrics.images_per_sec,
        report.metrics.latency_p50_us,
        report.metrics.latency_p99_us,
    );

    // The fast path matches the reference event simulator exactly.
    let (reference_logits, _) = EventSnn::new(&model).run(&x)?;
    assert_eq!(report.logits.as_slice(), reference_logits.as_slice());
    println!("logits match the reference event simulator bit-for-bit");

    // Hardware energy report from the measured event counts.
    let processor = Processor::new(ProcessorConfig::proposed());
    let hw = energy::energy_report(&processor, &model, &report.stats, &input_dims)?;
    println!(
        "hardware model: {:.1} µJ/image, {:.0} fps at {} MHz",
        hw.energy_per_image_uj,
        hw.fps,
        processor.config().frequency_mhz
    );
    Ok(())
}
