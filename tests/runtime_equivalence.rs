//! Backend-equivalence property tests: for random networks, random inputs
//! and random batch sizes, the CSR fast path, the reference event
//! simulator and the analytic `reference_forward` must produce the same
//! logits — `CsrEngine == EventSnn` bit-for-bit (same accumulation
//! discipline), and both equal to `reference_forward` within 1e-4. The
//! streaming front-end must preserve that guarantee under arbitrary
//! arrival order, arrival timing and batcher configuration.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use ttfs_snn::logquant::LogBase;
use ttfs_snn::nn::{
    ActivationLayer, AvgPool2dLayer, Conv2dLayer, DenseLayer, Flatten, Layer, MaxPool2dLayer, Relu,
    Sequential,
};
use ttfs_snn::runtime::{
    quantize_model, CsrEngine, InferenceBackend, InferenceServer, QuantConfig, QuantEngine,
    ServerConfig, StreamingConfig, StreamingServer, SubmitOptions, Ticket,
};
use ttfs_snn::sim::EventSnn;
use ttfs_snn::tensor::{Conv2dSpec, Tensor};
use ttfs_snn::ttfs::{convert, Base2Kernel, SnnModel};

/// Asserts `EventSnn == CsrEngine` bit-for-bit (logits AND event
/// statistics) at the engine's default chunk width, at one lane (the
/// classic sample-major walk), at the proptest-chosen `lanes`, and at a
/// whole-batch-plus-one chunk — the batched edge-major interchange must be
/// a pure performance knob — and both within 1e-4 of `reference_forward`.
fn check_backends(
    model: &SnnModel,
    x: &Tensor,
    input_dims: &[usize],
    lanes: usize,
) -> Result<(), TestCaseError> {
    let event = EventSnn::new(model);
    let csr = CsrEngine::compile(model, input_dims).expect("csr compile");
    let (event_logits, event_stats) = event.run(x).expect("event run");
    let (csr_logits, csr_stats) = csr.run_batch(x).expect("csr run");
    let reference = model.reference_forward(x).expect("reference");

    prop_assert_eq!(
        event_logits.as_slice(),
        csr_logits.as_slice(),
        "CSR and event backends share one accumulation discipline"
    );
    prop_assert_eq!(&event_stats, &csr_stats, "identical event statistics");
    for chunk in [1, lanes, x.dims()[0] + 1] {
        let alt = csr.clone().with_max_lanes(chunk);
        let (alt_logits, alt_stats) = alt.run_batch(x).expect("chunked run");
        prop_assert_eq!(
            alt_logits.as_slice(),
            csr_logits.as_slice(),
            "chunk width {} must not change logits",
            chunk
        );
        prop_assert_eq!(&alt_stats, &csr_stats, "chunk width {} stats", chunk);
    }
    let max_diff = csr_logits
        .as_slice()
        .iter()
        .zip(reference.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    prop_assert!(
        max_diff <= 1e-4,
        "csr vs reference max |diff| = {max_diff:e}"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conv + max-pool networks across random batch and chunk sizes.
    #[test]
    fn conv_maxpool_backends_agree(
        seed in 0u64..256,
        batch in 1usize..5,
        lanes in 1usize..7,
        xs in proptest::collection::vec(0.0f32..1.0, 4 * 2 * 36),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Sequential::new(vec![
            Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(2, 4, 3, 1, 1), &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::MaxPool2d(MaxPool2dLayer::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(4 * 3 * 3, 3, &mut rng)),
        ]);
        let model = convert(&net, Base2Kernel::paper_default(), 24).expect("conversion");
        let x = Tensor::from_vec(xs[..batch * 2 * 36].to_vec(), &[batch, 2, 6, 6]).expect("sized");
        check_backends(&model, &x, &[2, 6, 6], lanes)?;
    }

    /// Average pooling (scaled virtual spikes, duplicate (t, neuron)
    /// events per lane) and strided conv, across random chunk sizes.
    #[test]
    fn avgpool_strided_backends_agree(
        seed in 0u64..256,
        lanes in 1usize..5,
        xs in proptest::collection::vec(0.0f32..1.0, 2 * 49),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Sequential::new(vec![
            Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(1, 3, 3, 2, 0), &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::AvgPool2d(AvgPool2dLayer::new(3, 3)),
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(3, 2, &mut rng)),
        ]);
        let model = convert(&net, Base2Kernel::paper_default(), 24).expect("conversion");
        let x = Tensor::from_vec(xs, &[2, 1, 7, 7]).expect("sized");
        check_backends(&model, &x, &[1, 7, 7], lanes)?;
    }

    /// Deep dense stacks (quantization compounds with depth), across
    /// random chunk sizes.
    #[test]
    fn deep_dense_backends_agree(
        seed in 0u64..256,
        batch in 1usize..7,
        lanes in 1usize..9,
        xs in proptest::collection::vec(0.0f32..1.0, 6 * 10),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = vec![Layer::Flatten(Flatten::new())];
        let mut width = 10usize;
        for _ in 0..4 {
            layers.push(Layer::Dense(DenseLayer::new(width, 9, &mut rng)));
            layers.push(Layer::Activation(ActivationLayer::new(Box::new(Relu))));
            width = 9;
        }
        layers.push(Layer::Dense(DenseLayer::new(width, 4, &mut rng)));
        let model = convert(&Sequential::new(layers), Base2Kernel::paper_default(), 24)
            .expect("conversion");
        let x = Tensor::from_vec(xs[..batch * 10].to_vec(), &[batch, 1, 2, 5]).expect("sized");
        check_backends(&model, &x, &[1, 2, 5], lanes)?;
    }

    /// The quantized serving guarantee: for random architectures, bit
    /// widths, log bases, batch sizes and chunk widths, `QuantEngine` in
    /// LUT mode is **bit-identical** (logits AND event statistics) to the
    /// reference event simulator run over a model whose weights went
    /// through the same per-layer `LogQuantizer::quantize_tensor` — the
    /// packed-code tables, the decode LUT and the edge-major interchange
    /// must all be exact.
    #[test]
    fn quantized_csr_matches_quantized_event(
        seed in 0u64..256,
        bits in 3u8..8,
        base_z in 0u8..3,
        batch in 1usize..5,
        lanes in 1usize..7,
        xs in proptest::collection::vec(0.0f32..1.0, 4 * 2 * 36),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Sequential::new(vec![
            Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(2, 4, 3, 1, 1), &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::MaxPool2d(MaxPool2dLayer::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(4 * 3 * 3, 3, &mut rng)),
        ]);
        let model = convert(&net, Base2Kernel::paper_default(), 24).expect("conversion");
        let x = Tensor::from_vec(xs[..batch * 2 * 36].to_vec(), &[batch, 2, 6, 6]).expect("sized");

        let config = QuantConfig {
            base: LogBase::new(base_z),
            bits,
            ..QuantConfig::default()
        };
        // Ground truth: the reference simulator over per-layer-quantized
        // weights (same calibration the engine's compiler performs).
        let (qmodel, _) = quantize_model(&model, config.base, config.bits).expect("quantize");
        let (event_logits, event_stats) = EventSnn::new(&qmodel).run(&x).expect("event run");

        let quant = QuantEngine::compile(&model, &[2, 6, 6], config).expect("quant compile");
        for chunk in [1, lanes, batch + 1] {
            let engine = quant.clone().with_max_lanes(chunk);
            let (logits, stats) = engine.run_batch(&x).expect("quant run");
            prop_assert_eq!(
                logits.as_slice(),
                event_logits.as_slice(),
                "bits {} base z={} chunk {}",
                bits,
                base_z,
                chunk
            );
            prop_assert_eq!(&stats, &event_stats, "stats at chunk {}", chunk);
        }
    }

    /// The worker-pool server returns the same logits as any single-thread
    /// backend run, for every thread/chunk configuration.
    #[test]
    fn server_is_order_preserving(
        seed in 0u64..64,
        threads in 1usize..5,
        chunk in 1usize..6,
        xs in proptest::collection::vec(0.0f32..1.0, 9 * 8),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Sequential::new(vec![
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(8, 6, &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::Dense(DenseLayer::new(6, 3, &mut rng)),
        ]);
        let model = convert(&net, Base2Kernel::paper_default(), 24).expect("conversion");
        let x = Tensor::from_vec(xs, &[9, 1, 2, 4]).expect("sized");
        let single = EventSnn::new(&model).run(&x).expect("single").0;
        let server = InferenceServer::new(
            Arc::new(CsrEngine::compile(&model, &[1, 2, 4]).expect("compile")),
            ServerConfig { threads, chunk_size: chunk },
        );
        let report = server.run(&x).expect("pooled run");
        prop_assert_eq!(report.logits.as_slice(), single.as_slice());
        prop_assert_eq!(report.stats.batch, 9);
        prop_assert_eq!(
            report.metrics.requests as usize,
            9usize.div_ceil(chunk)
        );
    }
}

proptest! {
    // Fewer cases: each one spins up real threads and sleeps between
    // submissions to randomize how arrivals land in batching windows.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Streamed logits are bit-identical to the closed-batch server's on
    /// the same images, for every arrival order, inter-arrival gap, thread
    /// count, batcher configuration AND per-request scheduling options —
    /// EDF may flush windows early and reorder batch assembly by
    /// (deadline, priority), but grouping and ordering must never change
    /// results.
    #[test]
    fn streaming_matches_closed_batches(
        seed in 0u64..256,
        threads in 1usize..4,
        max_batch in 1usize..7,
        delay_us in 0u64..2_000,
        gap_us in 0u64..300,
        // Values past 3000 µs stand in for "no explicit deadline" (the
        // vendored proptest shim has no option strategy).
        request_deadlines_us in proptest::collection::vec(0u64..4_000, 10),
        priorities in proptest::collection::vec(0u8..4, 10),
        xs in proptest::collection::vec(0.0f32..1.0, 10 * 8),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Sequential::new(vec![
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(8, 6, &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::Dense(DenseLayer::new(6, 3, &mut rng)),
        ]);
        let model = convert(&net, Base2Kernel::paper_default(), 24).expect("conversion");
        let n = 10usize;
        let x = Tensor::from_vec(xs, &[n, 1, 2, 4]).expect("sized");

        // Closed-batch ground truth through the batched server.
        let closed = InferenceServer::new(
            Arc::new(CsrEngine::compile(&model, &[1, 2, 4]).expect("compile")),
            ServerConfig { threads: 2, chunk_size: 4 },
        )
        .run(&x)
        .expect("closed run")
        .logits;

        // Stream the same images one at a time, in a random order, with
        // random inter-arrival gaps.
        let server = StreamingServer::new(
            Arc::new(CsrEngine::compile(&model, &[1, 2, 4]).expect("compile")),
            StreamingConfig {
                threads,
                max_batch,
                max_delay: Duration::from_micros(delay_us),
                max_pending: 0,
                brownout: None,
            },
        );
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let sample_len = 8usize;
        let mut tickets: Vec<(usize, Ticket)> = Vec::with_capacity(n);
        for &i in &order {
            let image = Tensor::from_vec(
                x.as_slice()[i * sample_len..(i + 1) * sample_len].to_vec(),
                &[1, 2, 4],
            )
            .expect("sample");
            // Random per-request scheduling: some requests inherit the
            // server default (None), others carry their own EDF deadline
            // and priority.
            let options = SubmitOptions {
                deadline: match request_deadlines_us[i] {
                    us if us < 3_000 => Some(Duration::from_micros(us)),
                    _ => None, // inherit the server's max_delay
                },
                priority: priorities[i],
                trace: None,
            };
            tickets.push((i, server.submit_with(&image, options).expect("submit")));
            if gap_us > 0 {
                std::thread::sleep(Duration::from_micros(gap_us));
            }
        }
        let mut rows: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
        for (i, ticket) in tickets {
            rows[i] = Some(ticket.wait().expect("streamed result").logits);
        }
        let metrics = server.shutdown();
        prop_assert_eq!(metrics.requests, n as u64);
        prop_assert!(metrics.max_batch_occupancy as usize <= max_batch);
        for (i, row) in rows.into_iter().enumerate() {
            let row = row.expect("every index answered");
            prop_assert_eq!(
                row.as_slice(),
                &closed.as_slice()[i * 3..(i + 1) * 3],
                "streamed row {} must be bit-identical to the closed batch",
                i
            );
        }
    }
}

/// The degenerate all-zero input: no spikes anywhere, logits are pure bias
/// propagation, and every backend agrees with the reference exactly.
#[test]
fn all_zero_input_equivalence() {
    let mut rng = StdRng::seed_from_u64(123);
    let net = Sequential::new(vec![
        Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(1, 3, 3, 1, 1), &mut rng)),
        Layer::Activation(ActivationLayer::new(Box::new(Relu))),
        Layer::MaxPool2d(MaxPool2dLayer::new(2, 2)),
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(3 * 3 * 3, 4, &mut rng)),
    ]);
    let model = convert(&net, Base2Kernel::paper_default(), 24).unwrap();
    let x = Tensor::zeros(&[3, 1, 6, 6]);

    let (event_logits, event_stats) = EventSnn::new(&model).run(&x).unwrap();
    let csr = CsrEngine::compile(&model, &[1, 6, 6]).unwrap();
    let (csr_logits, csr_stats) = csr.run_batch(&x).unwrap();
    let reference = model.reference_forward(&x).unwrap();

    assert_eq!(csr_stats.layers[0].input_spikes, 0, "no input spikes");
    assert_eq!(event_stats, csr_stats);
    assert_eq!(event_logits.as_slice(), csr_logits.as_slice());
    assert!(
        csr_logits.allclose(&reference, 1e-6),
        "pure bias propagation"
    );

    // And through the server.
    let server = InferenceServer::new(
        Arc::new(csr),
        ServerConfig {
            threads: 2,
            chunk_size: 1,
        },
    );
    let report = server.run(&x).unwrap();
    assert_eq!(report.logits.as_slice(), csr_logits.as_slice());
}
