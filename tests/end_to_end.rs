//! Cross-crate integration tests: the full CAT → conversion → event-SNN →
//! quantization → hardware pipeline.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ttfs_snn::data::{DatasetSpec, SyntheticDataset};
use ttfs_snn::hw::{vgg16_geometry, Processor, ProcessorConfig, WorkloadProfile};
use ttfs_snn::logquant::{LogBase, LogQuantizer};
use ttfs_snn::nn::{
    ActivationLayer, BatchNorm2d, Conv2dLayer, DenseLayer, Flatten, Layer, MaxPool2dLayer, Relu,
    Sequential,
};
use ttfs_snn::sim::EventSnn;
use ttfs_snn::tensor::Conv2dSpec;
use ttfs_snn::ttfs::{
    convert, normalize_output_layer, train_with_cat, Base2Kernel, CatComponents, CatSchedule,
    PhiTtfs, SnnLayer,
};

fn tiny_net(rng: &mut StdRng) -> Sequential {
    Sequential::new(vec![
        Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(3, 6, 3, 1, 1), rng)),
        Layer::BatchNorm2d(BatchNorm2d::new(6)),
        Layer::Activation(ActivationLayer::new(Box::new(Relu))),
        Layer::MaxPool2d(MaxPool2dLayer::new(2, 2)),
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(6 * 4 * 4, 10, rng)),
    ])
}

fn tiny_data() -> SyntheticDataset {
    let spec = DatasetSpec::cifar10_like()
        .with_samples(120, 60)
        .with_geometry(3, 8, 8);
    SyntheticDataset::generate(&spec, 9)
}

/// The central claim: after full CAT (I+II+III), the event-driven SNN has
/// exactly the ANN's accuracy (zero conversion loss).
#[test]
fn conversion_is_lossless_after_full_cat() {
    let mut rng = StdRng::seed_from_u64(1);
    let data = tiny_data();
    let mut net = tiny_net(&mut rng);
    let phi = PhiTtfs::new(Base2Kernel::paper_default(), 24);
    let schedule = CatSchedule::paper_scaled(12, phi, CatComponents::full());
    let log = train_with_cat(
        &mut net,
        &schedule,
        data.train_images(),
        data.train_labels(),
        data.test_images(),
        data.test_labels(),
        32,
        &mut rng,
    )
    .expect("training");
    assert!(log.final_test_accuracy() > 0.5, "model must learn");

    let mut model = convert(&net, Base2Kernel::paper_default(), 24).expect("conversion");
    normalize_output_layer(&mut model, data.train_images()).expect("normalization");
    let snn_acc = model
        .accuracy(data.test_images(), data.test_labels())
        .expect("snn eval");
    let loss = snn_acc - log.final_test_accuracy();
    assert!(
        loss.abs() < 0.02,
        "conversion loss should be ~0 after I+II+III, got {loss}"
    );
}

/// The event-driven simulator agrees with the analytic reference forward
/// pass on a trained, converted model (not just random weights).
#[test]
fn event_sim_equals_reference_on_trained_model() {
    let mut rng = StdRng::seed_from_u64(2);
    let data = tiny_data();
    let mut net = tiny_net(&mut rng);
    let phi = PhiTtfs::new(Base2Kernel::paper_default(), 24);
    let schedule = CatSchedule::paper_scaled(6, phi, CatComponents::full());
    train_with_cat(
        &mut net,
        &schedule,
        data.train_images(),
        data.train_labels(),
        data.test_images(),
        data.test_labels(),
        32,
        &mut rng,
    )
    .expect("training");
    let model = convert(&net, Base2Kernel::paper_default(), 24).expect("conversion");
    let sim = EventSnn::new(&model);
    let (event_logits, stats) = sim.run(data.test_images()).expect("event run");
    let reference = model
        .reference_forward(data.test_images())
        .expect("reference");
    let tol = 1e-3 * (1.0 + reference.abs_max());
    assert!(event_logits.allclose(&reference, tol));
    // TTFS discipline: no layer can spike more than once per neuron.
    for layer in &stats.layers {
        assert!(layer.output_spikes <= layer.neurons);
    }
}

/// Log quantization at the paper's 5-bit / a_w = 2^(-1/2) keeps accuracy
/// close to fp32; 2 bits destroys it.
#[test]
fn quantization_bits_tradeoff_on_trained_model() {
    let mut rng = StdRng::seed_from_u64(3);
    let data = tiny_data();
    let mut net = tiny_net(&mut rng);
    let phi = PhiTtfs::new(Base2Kernel::paper_default(), 24);
    let schedule = CatSchedule::paper_scaled(12, phi, CatComponents::full());
    train_with_cat(
        &mut net,
        &schedule,
        data.train_images(),
        data.train_labels(),
        data.test_images(),
        data.test_labels(),
        32,
        &mut rng,
    )
    .expect("training");
    let mut model = convert(&net, Base2Kernel::paper_default(), 24).expect("conversion");
    normalize_output_layer(&mut model, data.train_images()).expect("normalization");
    let fp = model
        .accuracy(data.test_images(), data.test_labels())
        .expect("fp32 eval");

    let quantized = |model: &ttfs_snn::ttfs::SnnModel, bits: u8| {
        let mut q = model.clone();
        for layer in q.layers_mut() {
            if let SnnLayer::Conv { weight, .. } | SnnLayer::Dense { weight, .. } = layer {
                let quant =
                    LogQuantizer::fit(LogBase::inv_sqrt2(), bits, weight.as_slice()).expect("fit");
                *weight = quant.quantize_tensor(weight);
            }
        }
        q.accuracy(data.test_images(), data.test_labels())
            .expect("eval")
    };
    let q5 = quantized(&model, 5);
    let q2 = quantized(&model, 2);
    assert!(
        q5 >= fp - 0.10,
        "5-bit log quantization must stay near fp32: {q5} vs {fp}"
    );
    assert!(q2 <= q5, "2-bit must not beat 5-bit: {q2} vs {q5}");
}

/// Sparsity measured by the event simulator drives the hardware model:
/// end-to-end energy is finite, positive and SNN beats the dense TPU model.
#[test]
fn measured_sparsity_feeds_hardware_model() {
    let mut rng = StdRng::seed_from_u64(4);
    let data = tiny_data();
    let mut net = tiny_net(&mut rng);
    let phi = PhiTtfs::new(Base2Kernel::paper_default(), 24);
    let schedule = CatSchedule::paper_scaled(6, phi, CatComponents::full());
    train_with_cat(
        &mut net,
        &schedule,
        data.train_images(),
        data.train_labels(),
        data.test_images(),
        data.test_labels(),
        32,
        &mut rng,
    )
    .expect("training");
    let model = convert(&net, Base2Kernel::paper_default(), 24).expect("conversion");
    let sim = EventSnn::new(&model);
    let (_, stats) = sim.run(data.test_images()).expect("event run");

    let input_sparsity = stats.layers[0].input_spikes as f32 / data.test_images().len() as f32;
    let layer_sparsity: Vec<f32> = stats.layers.iter().map(|l| l.output_sparsity()).collect();
    let profile = WorkloadProfile::from_measurements(input_sparsity, layer_sparsity);

    let processor = Processor::new(ProcessorConfig::proposed());
    let layers = vgg16_geometry(32, 32, 10);
    let snn = processor.run_network(&layers, &profile);
    let tpu = ttfs_snn::hw::TpuModel::redesigned_16x16().run_network(&layers);
    assert!(snn.energy_per_image_uj > 0.0);
    assert!(
        snn.energy_per_image_uj < tpu.energy_per_image_uj,
        "SNN ({}) must beat dense TPU ({}) on energy",
        snn.energy_per_image_uj,
        tpu.energy_per_image_uj
    );
    assert!(snn.fps > tpu.fps, "SNN must beat TPU on fps");
}

/// The latency model matches Table 2's formula on the real VGG-16 shape:
/// 16 weighted layers, T=24 → 408 timesteps.
#[test]
fn table2_latency_formula() {
    let mut rng = StdRng::seed_from_u64(5);
    // Build a 16-weighted-layer network cheaply: 15 tiny dense + classifier.
    let mut layers = vec![Layer::Flatten(Flatten::new())];
    let mut width = 12usize;
    for _ in 0..15 {
        layers.push(Layer::Dense(DenseLayer::new(width, 12, &mut rng)));
        layers.push(Layer::Activation(ActivationLayer::new(Box::new(Relu))));
        width = 12;
    }
    layers.push(Layer::Dense(DenseLayer::new(width, 10, &mut rng)));
    let net = Sequential::new(layers);
    let model24 = convert(&net, Base2Kernel::new(4.0, 1.0), 24).expect("conversion");
    assert_eq!(model24.weighted_layers(), 16);
    assert_eq!(model24.latency_timesteps(), 408); // Table 2
    let model48 = convert(&net, Base2Kernel::new(8.0, 1.0), 48).expect("conversion");
    assert_eq!(model48.latency_timesteps(), 816); // Table 2
}
