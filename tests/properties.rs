//! Cross-crate property-based tests on the paper's core invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ttfs_snn::logquant::{LinearPe, LogBase, LogPe, LogQuantizer};
use ttfs_snn::nn::{ActivationFn, ActivationLayer, DenseLayer, Flatten, Layer, Relu, Sequential};
use ttfs_snn::sim::EventSnn;
use ttfs_snn::tensor::Tensor;
use ttfs_snn::ttfs::{convert, Base2Kernel, PhiTtfs, TtfsKernel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// φ_TTFS(x) equals decode(encode(x)) for every x — the activation is
    /// exactly the SNN's data representation (the heart of CAT).
    #[test]
    fn phi_ttfs_equals_snn_coding(x in -0.5f32..2.0) {
        let kernel = Base2Kernel::paper_default();
        let phi = PhiTtfs::new(kernel, 24);
        let snn = match kernel.encode(x, 24) {
            Some(t) => kernel.decode(t),
            None => 0.0,
        };
        prop_assert_eq!(phi.value(x), snn);
    }

    /// Encoding is monotone: a larger membrane voltage never fires later.
    #[test]
    fn larger_voltage_fires_no_later(a in 0.001f32..1.5, b in 0.001f32..1.5) {
        let kernel = Base2Kernel::paper_default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        if let (Some(t_lo), Some(t_hi)) = (kernel.encode(lo, 24), kernel.encode(hi, 24)) {
            prop_assert!(t_hi <= t_lo, "u={hi} fired at {t_hi}, u={lo} at {t_lo}");
        }
    }

    /// Quantization onto the kernel grid is idempotent and non-increasing.
    #[test]
    fn phi_ttfs_idempotent_and_bounded(x in 0.0f32..1.5) {
        let phi = PhiTtfs::paper_default();
        let y = phi.value(x);
        prop_assert!((phi.value(y) - y).abs() < 1e-6);
        prop_assert!(y <= x.max(1.0) + 1e-6);
        prop_assert!(y >= 0.0);
    }

    /// The LUT+shift product of eq. 17 equals the multiplier result for
    /// every representable weight code and spike time.
    #[test]
    fn log_pe_equals_multiplier(w in -1.0f32..1.0, t in 0u32..25) {
        prop_assume!(w.abs() > 1e-3);
        let q = LogQuantizer::with_fsr(LogBase::inv_sqrt2(), 5, 0.0).unwrap();
        let pe = LogPe::for_kernel(4.0, LogBase::inv_sqrt2()).unwrap().with_fsr_log2(0.0);
        let code = q.code(w);
        let wq = q.decode(code);
        let exact = LinearPe::new().multiply(wq, 4.0, t);
        let approx = pe.multiply(code, t).unwrap();
        prop_assert!((approx - exact).abs() <= 1e-4 * (1.0 + exact.abs()));
    }

    /// Log quantization preserves sign and never increases magnitude above
    /// the full-scale range.
    #[test]
    fn quantization_sign_and_range(w in -2.0f32..2.0) {
        let q = LogQuantizer::with_fsr(LogBase::inv_sqrt2(), 5, 0.0).unwrap();
        let wq = q.quantize(w);
        prop_assert!(wq.abs() <= 1.0 + 1e-6);
        if wq != 0.0 {
            prop_assert_eq!(wq.is_sign_negative(), w.is_sign_negative());
        }
    }

    /// Event simulation equals the reference forward pass for random dense
    /// networks and random inputs in [0, 1].
    #[test]
    fn event_sim_matches_reference(seed in 0u64..32, xs in proptest::collection::vec(0.0f32..1.0, 12)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Sequential::new(vec![
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(12, 6, &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::Dense(DenseLayer::new(6, 3, &mut rng)),
        ]);
        let model = convert(&net, Base2Kernel::paper_default(), 24).unwrap();
        let x = Tensor::from_vec(xs, &[1, 1, 3, 4]).unwrap();
        let sim = EventSnn::new(&model);
        let (event, _) = sim.run(&x).unwrap();
        let reference = model.reference_forward(&x).unwrap();
        let tol = 1e-4 * (1.0 + reference.abs_max());
        prop_assert!(event.allclose(&reference, tol));
    }

    /// The clip activation brackets φ_TTFS: clip(x) ≥ φ_TTFS(x) on [0, θ₀]
    /// (quantization only rounds down within the band).
    #[test]
    fn clip_dominates_ttfs(x in 0.0f32..1.0) {
        use ttfs_snn::ttfs::PhiClip;
        let clip = PhiClip::new(1.0);
        let phi = PhiTtfs::paper_default();
        prop_assert!(clip.value(x) >= phi.value(x) - 1e-6);
    }
}
