//! Failure-injection and edge-case tests across the whole stack.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ttfs_snn::hw::{LayerGeometry, Processor, ProcessorConfig, WorkloadProfile};
use ttfs_snn::logquant::{LogBase, LogQuantizer, QatTrainer};
use ttfs_snn::nn::{
    ActivationFn, ActivationLayer, DenseLayer, DropoutLayer, Flatten, Layer, Relu, Sequential, Sgd,
    TrainConfig,
};
use ttfs_snn::sim::EventSnn;
use ttfs_snn::tensor::Tensor;
use ttfs_snn::ttfs::{convert, normalize_output_layer, Base2Kernel, PhiTtfs, TtfsKernel};

/// An input of all-zeros produces no spikes anywhere, and the SNN output is
/// pure bias propagation — the degenerate path must not panic or diverge.
#[test]
fn all_zero_input_is_handled() {
    let mut rng = StdRng::seed_from_u64(0);
    let net = Sequential::new(vec![
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(9, 4, &mut rng)),
        Layer::Activation(ActivationLayer::new(Box::new(Relu))),
        Layer::Dense(DenseLayer::new(4, 2, &mut rng)),
    ]);
    let model = convert(&net, Base2Kernel::paper_default(), 24).unwrap();
    let sim = EventSnn::new(&model);
    let x = Tensor::zeros(&[1, 1, 3, 3]);
    let (logits, stats) = sim.run(&x).unwrap();
    assert_eq!(stats.layers[0].input_spikes, 0);
    assert!(logits.as_slice().iter().all(|v| v.is_finite()));
}

/// Saturated inputs (all ≥ θ₀) all fire at t=0 and stay exact.
#[test]
fn saturated_input_fires_immediately() {
    let mut rng = StdRng::seed_from_u64(1);
    let net = Sequential::new(vec![
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(4, 3, &mut rng)),
        Layer::Activation(ActivationLayer::new(Box::new(Relu))),
        Layer::Dense(DenseLayer::new(3, 2, &mut rng)),
    ]);
    let model = convert(&net, Base2Kernel::paper_default(), 24).unwrap();
    let sim = EventSnn::new(&model);
    let x = Tensor::full(&[1, 1, 2, 2], 5.0);
    let (_, trace) = sim.run_traced(&x).unwrap();
    assert!(trace[0].iter().all(|&(_, t)| t == 0));
    let reference = model.reference_forward(&x).unwrap();
    let (logits, _) = sim.run(&x).unwrap();
    assert!(logits.allclose(&reference, 1e-4));
}

/// Normalizing the output layer when the calibration produces all-zero
/// logits must be a no-op, not a division by zero.
#[test]
fn output_normalization_zero_calibration() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut net = Sequential::new(vec![
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(4, 2, &mut rng)),
    ]);
    // Zero the classifier so logits vanish.
    net.visit_params(&mut |p, _| p.map_inplace(|_| 0.0));
    let mut model = convert(&net, Base2Kernel::paper_default(), 24).unwrap();
    let calib = Tensor::full(&[2, 1, 2, 2], 0.5);
    let scale = normalize_output_layer(&mut model, &calib).unwrap();
    assert_eq!(scale, 1.0);
}

/// NaN-free training under dropout + QAT together (the harshest stack).
#[test]
fn dropout_qat_training_stays_finite() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut net = Sequential::new(vec![
        Layer::Dense(DenseLayer::new(4, 16, &mut rng)),
        Layer::Activation(ActivationLayer::new(Box::new(Relu))),
        Layer::Dropout(DropoutLayer::new(0.5, 7)),
        Layer::Dense(DenseLayer::new(16, 3, &mut rng)),
    ]);
    let trainer = QatTrainer::new(LogBase::inv_sqrt2(), 5);
    let mut opt = Sgd::new(0.05, 0.9, 5e-4);
    let images = ttfs_snn::tensor::uniform(&[24, 4], 0.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..24).map(|i| i % 3).collect();
    let config = TrainConfig {
        batch_size: 8,
        shuffle: true,
    };
    for _ in 0..5 {
        let stats = trainer
            .train_epoch(&mut net, &mut opt, &images, &labels, &config, &mut rng)
            .unwrap();
        assert!(stats.loss.is_finite());
    }
    let mut max_abs = 0.0f32;
    net.visit_params(&mut |p, _| max_abs = max_abs.max(p.abs_max()));
    assert!(max_abs.is_finite());
}

/// A workload profile with zero density yields zero SOPs but still finite,
/// positive cycle counts (control overhead never disappears).
#[test]
fn processor_with_silent_network() {
    let p = Processor::new(ProcessorConfig::proposed());
    let layers = vec![LayerGeometry::conv("c", 3, 8, 3, 8, 8)];
    let r = p.run_network(&layers, &WorkloadProfile::uniform(0.0));
    assert_eq!(r.total_sops, 0);
    assert!(r.cycles > 0);
    assert!(r.energy_per_image_uj > 0.0); // static + weight streaming remain
}

/// Quantizer on a constant weight population: every value maps to the FSR.
#[test]
fn quantizer_constant_population() {
    let q = LogQuantizer::fit(LogBase::inv_sqrt2(), 5, &[0.25; 16]).unwrap();
    for _ in 0..4 {
        assert_eq!(q.quantize(0.25), 0.25);
    }
}

/// Kernel windows of zero: only inputs at/above θ₀ are representable.
#[test]
fn zero_window_kernel() {
    let k = Base2Kernel::paper_default();
    assert_eq!(k.encode(1.0, 0), Some(0));
    assert_eq!(k.encode(0.5, 0), None);
    let phi = PhiTtfs::new(k, 0);
    assert_eq!(phi.value(0.9), 0.0);
    assert_eq!(phi.value(1.1), 1.0);
}

/// Conversion must reject a network whose only weighted layer is pooling-
/// wrapped conv (no dense readout).
#[test]
fn conversion_structure_errors_are_reported() {
    let net = Sequential::new(vec![Layer::Flatten(Flatten::new())]);
    let err = convert(&net, Base2Kernel::paper_default(), 24).unwrap_err();
    assert!(err.to_string().contains("no weighted layers"));
}
