//! The paper's deployment network: VGG-16 must be constructible,
//! CAT-switchable and convertible, with Table 2's latency.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ttfs_snn::nn::models::vgg16;
use ttfs_snn::ttfs::{convert, Base2Kernel, CatComponents, CatSchedule, PhiTtfs};

#[test]
fn vgg16_converts_with_table2_latency() {
    let mut rng = StdRng::seed_from_u64(0);
    let mut net = vgg16(32, 10, &mut rng);

    // CAT can switch all 15 hidden activations.
    let phi = PhiTtfs::new(Base2Kernel::paper_default(), 24);
    let schedule = CatSchedule::paper_scaled(200, phi, CatComponents::full());
    schedule.apply(&mut net, 199);
    assert!(net.activation_names().iter().all(|&n| n == "ttfs"));

    // Conversion fuses 13 BN layers and yields 16 weighted layers.
    let model = convert(&net, Base2Kernel::paper_default(), 24).expect("vgg16 conversion");
    assert_eq!(model.weighted_layers(), 16);
    assert_eq!(model.latency_timesteps(), 408); // Table 2, T=24

    let model48 = convert(&net, Base2Kernel::new(8.0, 1.0), 48).expect("vgg16 conversion");
    assert_eq!(model48.latency_timesteps(), 816); // Table 2, T=48
}

#[test]
fn vgg16_tiny_imagenet_converts() {
    let mut rng = StdRng::seed_from_u64(1);
    let net = vgg16(64, 200, &mut rng);
    let model = convert(&net, Base2Kernel::paper_default(), 24).expect("conversion");
    assert_eq!(model.weighted_layers(), 16);
    // Readout width matches Tiny-ImageNet's 200 classes.
    match model.layers().iter().rev().find(|l| l.is_weighted()) {
        Some(ttfs_snn::ttfs::SnnLayer::Dense { weight, .. }) => {
            assert_eq!(weight.dims()[0], 200);
        }
        other => panic!("unexpected readout {other:?}"),
    }
}
