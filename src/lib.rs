//! # ttfs-snn — facade crate
//!
//! One-stop re-export of the TTFS-CAT reproduction workspace: conversion-aware
//! training and time-to-first-spike coding for an energy-efficient deep SNN
//! processor (Lew, Lee, Park — DAC 2022).
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`tensor`] | `snn-tensor` | ND f32 tensors, GEMM, conv, pooling |
//! | [`nn`] | `snn-nn` | layers, backprop, SGD, LR schedules |
//! | [`data`] | `snn-data` | synthetic CIFAR-like dataset generators |
//! | [`ttfs`] | `ttfs-core` | kernels, φ_Clip/φ_TTFS, CAT, conversion |
//! | [`sim`] | `snn-sim` | event-driven TTFS SNN simulator |
//! | [`logquant`] | `snn-logquant` | 5-bit log quantization, LUT+shift PEs |
//! | [`hw`] | `snn-hw` | processor simulator + area/power/energy model |
//! | [`runtime`] | `snn-runtime` | batched multi-threaded CSR inference engine |
//! | [`gateway`] | `snn-gateway` | dependency-free HTTP/1.1 serving front-end |
//! | [`trace`] | `snn-trace` | per-request span trees + Chrome trace export |
//! | [`telemetry`] | `snn-telemetry` | windowed time-series metrics + SLO burn rates |
//! | [`log`] | `snn-log` | structured trace-correlated logs + incident recorder |
//!
//! See `examples/quickstart.rs` for the end-to-end pipeline and
//! `examples/runtime_server.rs` for the batched inference runtime (add
//! `-- --gateway` to serve it over HTTP).

pub use snn_data as data;
pub use snn_gateway as gateway;
pub use snn_hw as hw;
pub use snn_log as log;
pub use snn_logquant as logquant;
pub use snn_nn as nn;
pub use snn_runtime as runtime;
pub use snn_sim as sim;
pub use snn_telemetry as telemetry;
pub use snn_tensor as tensor;
pub use snn_trace as trace;
pub use ttfs_core as ttfs;
